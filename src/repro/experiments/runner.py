"""Run every experiment and print the regenerated tables.

``python -m repro.experiments.runner`` regenerates all figures of the paper
(and the ablations) at the default reduced scale and prints each as a table,
together with a one-line verdict on whether the paper's qualitative claim is
reproduced.  Use ``--full`` for the paper-scale Figure 8 sweep (slower) and
``--jobs N`` to fan the experiments across ``N`` worker processes (every
experiment carries its own fixed seeds, so the results and verdicts are
identical to the serial run).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Optional, Sequence, Tuple

from .active_nodes import run_active_nodes
from .burstiness import run_burstiness
from .figure1 import run_figure1
from .figure2 import run_figure2
from .figure3 import run_figure3
from .figure4 import run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6
from .figure7 import run_figure7
from .figure8 import PAPER_INDEPENDENT_LOSS_RATES, run_figure8
from .fixed_layers import run_fixed_layers
from .layer_ablation import run_layer_ablation
from .leave_latency import run_leave_latency
from .loss_correlation import run_loss_correlation
from .mixed_sessions import run_mixed_sessions
from .parallel import parallel_map

__all__ = ["run_all", "main", "EXPERIMENT_KEYS"]


def _run_figure8_scaled(full_scale: bool, jobs: int = 1, engine: str = "batched"):
    # Figure 8 dominates the full-scale run, so it additionally fans its
    # (protocol, loss-rate) points across workers; with jobs=1 this is the
    # plain serial sweep (with the batched engine stacking each protocol's
    # points into one scan).
    if not full_scale:
        return run_figure8(jobs=jobs, engine=engine)
    return run_figure8(
        independent_loss_rates=PAPER_INDEPENDENT_LOSS_RATES,
        num_receivers=100,
        duration_units=2000,
        repetitions=5,
        jobs=jobs,
        engine=engine,
    )


#: key -> (display name, runner(full_scale, jobs, engine) -> result, verdict(result) -> str).
#: Workers are handed only the registry *key* (via ``_run_experiment_by_key``)
#: and resolve the runner after importing this module, so the entries
#: themselves never need to be pickled.
_EXPERIMENTS: List[Tuple[str, str, Callable, Callable]] = [
    ("figure1", "Figure 1 (sample network)",
     lambda full, jobs, engine: run_figure1(),
     lambda r: "matches paper" if r.matches_paper else "MISMATCH"),
    ("figure2", "Figure 2 (single-rate limitations)",
     lambda full, jobs, engine: run_figure2(),
     lambda r: "matches paper" if (r.single_rate_matches_paper and r.multi_rate_is_more_max_min_fair)
     else "MISMATCH"),
    ("figure3", "Figure 3 (receiver removal)",
     lambda full, jobs, engine: run_figure3(),
     lambda r: "matches paper" if r.demonstrates_both_directions else "MISMATCH"),
    ("figure4", "Figure 4 (redundancy vs session fairness)",
     lambda full, jobs, engine: run_figure4(),
     lambda r: "matches paper" if r.matches_paper else "MISMATCH"),
    ("figure5", "Figure 5 (random-join redundancy)",
     lambda full, jobs, engine: run_figure5(),
     lambda r: "bounded as predicted" if r.respects_upper_bounds else "MISMATCH"),
    ("figure6", "Figure 6 (redundancy vs fair rate)",
     lambda full, jobs, engine: run_figure6(),
     lambda r: f"formula vs water-filling max error {r.cross_check_max_error:.2e}"),
    ("fixed_layers", "Section 3 fixed-layer example",
     lambda full, jobs, engine: run_fixed_layers(),
     lambda r: "no max-min fair allocation exists" if r.no_max_min_fair_exists else "MISMATCH"),
    ("figure7", "Figure 7(a) Markov analysis",
     lambda full, jobs, engine: run_figure7(),
     lambda r: "equal loss rates give the highest redundancy"
     if r.equal_loss_is_worst else "MISMATCH"),
    ("figure8", "Figure 8 (protocol redundancy)",
     _run_figure8_scaled,
     lambda r: "coordinated protocol lowest; below 2.5"
     if (r.low_shared_loss.coordinated_is_lowest
         and r.low_shared_loss.max_redundancy("coordinated") < 2.5)
     else "shape differs"),
    ("layer_ablation", "Ablation: layer count",
     lambda full, jobs, engine: run_layer_ablation(),
     lambda r: "more layers never increase redundancy"
     if r.never_worse_than_single_layer else "MISMATCH"),
    ("loss_correlation", "Ablation: loss correlation",
     lambda full, jobs, engine: run_loss_correlation(),
     lambda r: "correlated loss lowers redundancy"
     if r.all_protocols_benefit_from_correlation else "shape differs"),
    ("mixed_sessions", "Ablation: mixed session types (Lemma 3)",
     lambda full, jobs, engine: run_mixed_sessions(),
     lambda r: "ordering monotone and Theorem 2 holds"
     if (r.ordering_is_monotone and r.theorem2_holds_throughout) else "MISMATCH"),
    ("active_nodes", "Extension: active-node coordination",
     lambda full, jobs, engine: run_active_nodes(),
     lambda r: "redundancy of one is feasible"
     if (r.active_node_redundancy_near_one and r.active_node_is_lowest)
     else "shape differs"),
    ("leave_latency", "Extension: leave latency",
     lambda full, jobs, engine: run_leave_latency(),
     lambda r: "longer leave latency increases redundancy"
     if r.redundancy_increases_with_latency else "shape differs"),
    ("burstiness", "Extension: bursty loss",
     lambda full, jobs, engine: run_burstiness(),
     lambda r: "protocol ordering robust to burstiness"
     if r.ordering_preserved else "shape differs"),
]

#: Keys accepted by ``run_all(only=...)``, in execution order.
EXPERIMENT_KEYS: Tuple[str, ...] = tuple(key for key, _, _, _ in _EXPERIMENTS)


def _run_experiment_by_key(key: str, full_scale: bool, jobs: int, engine: str = "batched"):
    """Execute one experiment by registry key (picklable worker entry point).

    Returns ``(result, elapsed_seconds)``; timing happens in the worker so
    the per-experiment breakdown survives the multi-process path.  ``jobs``
    reaches the runners that can fan out internally (Figure 8's point sweep,
    which dominates the full-scale run), as does the simulation ``engine``
    selection.
    """
    for candidate, _name, runner, _verdict in _EXPERIMENTS:
        if candidate == key:
            start = time.time()
            result = runner(full_scale, jobs, engine)
            return result, time.time() - start
    raise KeyError(f"unknown experiment key {key!r}")


def run_all(
    full_scale: bool = False,
    jobs: int = 1,
    only: Optional[Sequence[str]] = None,
    engine: str = "batched",
) -> List[Tuple[str, object, str]]:
    """Run every experiment; return (name, result, verdict) triples.

    Parameters
    ----------
    full_scale:
        Run Figure 8 at paper scale (100 receivers, full loss sweep).
    jobs:
        Number of worker processes.  ``1`` (the default) runs everything
        in-process; larger values fan the experiments out via
        :func:`repro.experiments.parallel.parallel_map` (and Figure 8
        additionally fans its point sweep).  All experiments use fixed
        seeds, so results and verdicts are independent of ``jobs`` apart
        from each verdict's trailing ``(<elapsed>s)`` timing suffix.
    only:
        Optional subset of :data:`EXPERIMENT_KEYS` to run (registry order is
        preserved regardless of the order given here).
    engine:
        Simulation engine for the packet-level experiments: ``"batched"``
        (default) or ``"reference"``.  Results are identical; only the
        runtime differs.
    """
    if only is not None:
        unknown = sorted(set(only) - set(EXPERIMENT_KEYS))
        if unknown:
            raise KeyError(f"unknown experiment keys {unknown}; valid: {list(EXPERIMENT_KEYS)}")
        selected = [entry for entry in _EXPERIMENTS if entry[0] in set(only)]
    else:
        selected = list(_EXPERIMENTS)

    outcomes = parallel_map(
        _run_experiment_by_key,
        [(key, full_scale, jobs, engine) for key, _, _, _ in selected],
        jobs=jobs,
    )
    # Verdict format matches the original runner: "<verdict> (<elapsed>s)".
    # The timing suffix is the only jobs-dependent part of the output.
    return [
        (name, result, f"{verdict(result)} ({elapsed:.1f}s)")
        for (_key, name, _runner, verdict), (result, elapsed) in zip(selected, outcomes)
    ]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run Figure 8 at paper scale (100 receivers, full loss sweep)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="number of worker processes (default 1: run serially in-process)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        choices=EXPERIMENT_KEYS,
        default=None,
        help="run only the named experiments",
    )
    parser.add_argument(
        "--engine",
        choices=("batched", "reference"),
        default="batched",
        help="simulation engine for the packet-level experiments "
        "(identical results; 'reference' is the slow per-packet loop)",
    )
    args = parser.parse_args(argv)

    start = time.time()
    for name, result, verdict in run_all(
        full_scale=args.full, jobs=args.jobs, only=args.only, engine=args.engine
    ):
        print("=" * 72)
        print(f"{name}: {verdict}")
        print("=" * 72)
        table = getattr(result, "table", None)
        if callable(table):
            print(table())
        print()
    print(f"total wall time: {time.time() - start:.1f}s (jobs={args.jobs})")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
