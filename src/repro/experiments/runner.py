"""Run every experiment and print the regenerated tables.

``python -m repro.experiments.runner`` regenerates all figures of the paper
(and the ablations) at the default reduced scale and prints each as a table,
together with a one-line verdict on whether the paper's qualitative claim is
reproduced.  Use ``--full`` for the paper-scale Figure 8 sweep (slower).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Tuple

from .active_nodes import run_active_nodes
from .burstiness import run_burstiness
from .figure1 import run_figure1
from .figure2 import run_figure2
from .figure3 import run_figure3
from .figure4 import run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6
from .figure7 import run_figure7
from .figure8 import PAPER_INDEPENDENT_LOSS_RATES, run_figure8
from .fixed_layers import run_fixed_layers
from .layer_ablation import run_layer_ablation
from .leave_latency import run_leave_latency
from .loss_correlation import run_loss_correlation
from .mixed_sessions import run_mixed_sessions

__all__ = ["run_all", "main"]


def _figure8_runner(full_scale: bool) -> Callable[[], object]:
    if not full_scale:
        return run_figure8
    return lambda: run_figure8(
        independent_loss_rates=PAPER_INDEPENDENT_LOSS_RATES,
        num_receivers=100,
        duration_units=2000,
        repetitions=5,
    )


def run_all(full_scale: bool = False) -> List[Tuple[str, object, str]]:
    """Run every experiment; return (name, result, verdict) triples."""
    experiments: List[Tuple[str, Callable[[], object], Callable[[object], str]]] = [
        ("Figure 1 (sample network)", run_figure1,
         lambda r: "matches paper" if r.matches_paper else "MISMATCH"),
        ("Figure 2 (single-rate limitations)", run_figure2,
         lambda r: "matches paper" if (r.single_rate_matches_paper and r.multi_rate_is_more_max_min_fair)
         else "MISMATCH"),
        ("Figure 3 (receiver removal)", run_figure3,
         lambda r: "matches paper" if r.demonstrates_both_directions else "MISMATCH"),
        ("Figure 4 (redundancy vs session fairness)", run_figure4,
         lambda r: "matches paper" if r.matches_paper else "MISMATCH"),
        ("Figure 5 (random-join redundancy)", run_figure5,
         lambda r: "bounded as predicted" if r.respects_upper_bounds else "MISMATCH"),
        ("Figure 6 (redundancy vs fair rate)", run_figure6,
         lambda r: f"formula vs water-filling max error {r.cross_check_max_error:.2e}"),
        ("Section 3 fixed-layer example", run_fixed_layers,
         lambda r: "no max-min fair allocation exists" if r.no_max_min_fair_exists else "MISMATCH"),
        ("Figure 7(a) Markov analysis", run_figure7,
         lambda r: "equal loss rates give the highest redundancy"
         if r.equal_loss_is_worst else "MISMATCH"),
        ("Figure 8 (protocol redundancy)", _figure8_runner(full_scale),
         lambda r: "coordinated protocol lowest; below 2.5"
         if (r.low_shared_loss.coordinated_is_lowest
             and r.low_shared_loss.max_redundancy("coordinated") < 2.5)
         else "shape differs"),
        ("Ablation: layer count", run_layer_ablation,
         lambda r: "more layers never increase redundancy"
         if r.never_worse_than_single_layer else "MISMATCH"),
        ("Ablation: loss correlation", run_loss_correlation,
         lambda r: "correlated loss lowers redundancy"
         if r.all_protocols_benefit_from_correlation else "shape differs"),
        ("Ablation: mixed session types (Lemma 3)", run_mixed_sessions,
         lambda r: "ordering monotone and Theorem 2 holds"
         if (r.ordering_is_monotone and r.theorem2_holds_throughout) else "MISMATCH"),
        ("Extension: active-node coordination", run_active_nodes,
         lambda r: "redundancy of one is feasible"
         if (r.active_node_redundancy_near_one and r.active_node_is_lowest)
         else "shape differs"),
        ("Extension: leave latency", run_leave_latency,
         lambda r: "longer leave latency increases redundancy"
         if r.redundancy_increases_with_latency else "shape differs"),
        ("Extension: bursty loss", run_burstiness,
         lambda r: "protocol ordering robust to burstiness"
         if r.ordering_preserved else "shape differs"),
    ]

    results = []
    for name, runner, verdict in experiments:
        start = time.time()
        result = runner()
        elapsed = time.time() - start
        results.append((name, result, f"{verdict(result)} ({elapsed:.1f}s)"))
    return results


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run Figure 8 at paper scale (100 receivers, full loss sweep)",
    )
    args = parser.parse_args(argv)

    for name, result, verdict in run_all(full_scale=args.full):
        print("=" * 72)
        print(f"{name}: {verdict}")
        print("=" * 72)
        table = getattr(result, "table", None)
        if callable(table):
            print(table())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
