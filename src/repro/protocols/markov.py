"""Discrete-time Markov analysis of the two-receiver star (Figure 7(a)).

The paper's first set of Section-4 experiments uses Markov models of the
protocols on a two-receiver modified star to study how shared loss (rate
``p`` on the link abutting the sender) and independent loss (rates ``p1``,
``p2`` on the fan-out links) affect redundancy, and reports one headline
finding: *redundancy is highest when receivers experience the same
end-to-end loss rates*.

This module provides that analysis model.  The chain state is the pair of
subscription levels ``(i1, i2)``; one step corresponds to one sender time
unit.  Within a unit a receiver at level ``i`` is subscribed to
``n_i = 2^(i-1)`` packets, so

* the probability it observes at least one congestion event is
  ``1 - [(1-p)(1-p_k)]^{n_i}``, and the events of the two receivers are
  correlated because packets on the common layers share the shared-link
  loss outcome;
* conditioned on a loss-free unit, the receiver joins one layer with a
  protocol-dependent probability chosen so the expected packets between
  events is the paper's ``2^(2(i-1))``; for the Coordinated protocol the
  join opportunities of the two receivers are common (nested sync points),
  for the other protocols they are independent.

The model collapses a unit's possibly-multiple losses into a single leave
and treats joins as at most one per unit; this keeps the state space at
``M^2`` while preserving the qualitative behaviour the paper reports (the
loss-correlation effect), which is what the tests and the loss-correlation
ablation verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ProtocolError

__all__ = [
    "MarkovAnalysisResult",
    "TwoReceiverMarkovModel",
    "redundancy_vs_loss_split",
]

_PROTOCOLS = ("uncoordinated", "deterministic", "coordinated")


@dataclass
class MarkovAnalysisResult:
    """Stationary-state metrics of the two-receiver Markov model."""

    protocol: str
    shared_loss_rate: float
    independent_loss_rates: Tuple[float, float]
    stationary: np.ndarray
    receiver_rates: Tuple[float, float]
    shared_link_rate: float
    mean_levels: Tuple[float, float]

    @property
    def redundancy(self) -> float:
        """Stationary redundancy of the session on the shared link."""
        efficient = max(self.receiver_rates)
        if efficient <= 0:
            return 1.0
        return self.shared_link_rate / efficient


class TwoReceiverMarkovModel:
    """Joint Markov chain over the two receivers' subscription levels."""

    def __init__(
        self,
        protocol: str,
        shared_loss_rate: float,
        loss_rate_one: float,
        loss_rate_two: float,
        num_layers: int = 8,
    ) -> None:
        protocol = protocol.lower()
        if protocol not in _PROTOCOLS:
            raise ProtocolError(
                f"unknown protocol {protocol!r}; choose from {_PROTOCOLS}"
            )
        for name, value in [
            ("shared_loss_rate", shared_loss_rate),
            ("loss_rate_one", loss_rate_one),
            ("loss_rate_two", loss_rate_two),
        ]:
            if not 0.0 <= value < 1.0:
                raise ProtocolError(f"{name} must lie in [0, 1), got {value}")
        if num_layers < 1:
            raise ProtocolError(f"num_layers must be >= 1, got {num_layers}")
        self.protocol = protocol
        self.shared_loss_rate = float(shared_loss_rate)
        self.loss_rates = (float(loss_rate_one), float(loss_rate_two))
        self.num_layers = int(num_layers)

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    @staticmethod
    def _packets_per_unit(level: int) -> int:
        """Cumulative packets per time unit at subscription level ``level``."""
        return 2 ** (level - 1)

    def _joint_loss_distribution(self, level_one: int, level_two: int) -> Dict[Tuple[bool, bool], float]:
        """Joint probability of (receiver 1 saw loss, receiver 2 saw loss) in a unit."""
        p_shared = self.shared_loss_rate
        p_one, p_two = self.loss_rates
        n_one = self._packets_per_unit(level_one)
        n_two = self._packets_per_unit(level_two)
        n_common = self._packets_per_unit(min(level_one, level_two))

        survive_one = (1.0 - p_shared) * (1.0 - p_one)
        survive_two = (1.0 - p_shared) * (1.0 - p_two)
        no_loss_one = survive_one ** n_one
        no_loss_two = survive_two ** n_two
        # Common packets share the shared-link outcome; exclusive packets are
        # independent across receivers.
        both_survive_common = (1.0 - p_shared) * (1.0 - p_one) * (1.0 - p_two)
        no_loss_both = (
            both_survive_common ** n_common
            * survive_one ** (n_one - n_common)
            * survive_two ** (n_two - n_common)
        )
        p_no_no = no_loss_both
        p_no_yes = no_loss_one - no_loss_both
        p_yes_no = no_loss_two - no_loss_both
        p_yes_yes = 1.0 - no_loss_one - no_loss_two + no_loss_both
        distribution = {
            (False, False): max(p_no_no, 0.0),
            (False, True): max(p_no_yes, 0.0),
            (True, False): max(p_yes_no, 0.0),
            (True, True): max(p_yes_yes, 0.0),
        }
        total = sum(distribution.values())
        return {key: value / total for key, value in distribution.items()}

    def _join_probability(self, level: int) -> float:
        """Per-unit join probability for a loss-free receiver at ``level``.

        All protocols target an expected ``2^(2(i-1))`` packets between
        events; at ``2^(i-1)`` packets per unit that is one join opportunity
        per ``2^(i-1)`` units on average.
        """
        if level >= self.num_layers:
            return 0.0
        if self.protocol == "uncoordinated":
            per_packet = 2.0 ** (-2.0 * (level - 1))
            return 1.0 - (1.0 - per_packet) ** self._packets_per_unit(level)
        # Deterministic threshold and coordinated sync period both amount to
        # one opportunity every 2^(i-1) units.
        return min(2.0 ** (-(level - 1)), 1.0)

    def _joint_join_distribution(
        self, level_one: int, level_two: int
    ) -> Dict[Tuple[bool, bool], float]:
        """Joint probability of (receiver 1 joins, receiver 2 joins) given both loss-free."""
        q_one = self._join_probability(level_one)
        q_two = self._join_probability(level_two)
        if self.protocol != "coordinated":
            return {
                (True, True): q_one * q_two,
                (True, False): q_one * (1.0 - q_two),
                (False, True): (1.0 - q_one) * q_two,
                (False, False): (1.0 - q_one) * (1.0 - q_two),
            }
        # Coordinated: sync points are common and nested.  A sync point for
        # the higher level is also one for the lower level, so the receiver
        # at the higher level never joins alone.
        high, low = (q_one, q_two) if q_one <= q_two else (q_two, q_one)
        # high == probability of the rarer (higher-level) sync; low the more
        # frequent (lower-level) sync; the rarer set of instants is a subset.
        p_both = high
        p_low_only = low - high
        if q_one <= q_two:
            # receiver 1 is the higher level (rarer sync).
            return {
                (True, True): p_both,
                (False, True): max(p_low_only, 0.0),
                (True, False): 0.0,
                (False, False): max(1.0 - low, 0.0),
            }
        return {
            (True, True): p_both,
            (True, False): max(p_low_only, 0.0),
            (False, True): 0.0,
            (False, False): max(1.0 - low, 0.0),
        }

    # ------------------------------------------------------------------
    # chain assembly and solution
    # ------------------------------------------------------------------
    def _state_index(self, level_one: int, level_two: int) -> int:
        return (level_one - 1) * self.num_layers + (level_two - 1)

    def transition_matrix(self) -> np.ndarray:
        """The ``M^2 x M^2`` one-unit transition matrix."""
        size = self.num_layers * self.num_layers
        matrix = np.zeros((size, size))
        for level_one in range(1, self.num_layers + 1):
            for level_two in range(1, self.num_layers + 1):
                source = self._state_index(level_one, level_two)
                losses = self._joint_loss_distribution(level_one, level_two)
                joins = self._joint_join_distribution(level_one, level_two)
                for (loss_one, loss_two), p_loss in losses.items():
                    if p_loss <= 0.0:
                        continue
                    if loss_one and loss_two:
                        outcomes = {(True, True, False, False): 1.0}
                    elif loss_one and not loss_two:
                        q = self._join_probability(level_two)
                        outcomes = {
                            (True, False, False, True): q,
                            (True, False, False, False): 1.0 - q,
                        }
                    elif loss_two and not loss_one:
                        q = self._join_probability(level_one)
                        outcomes = {
                            (False, True, True, False): q,
                            (False, True, False, False): 1.0 - q,
                        }
                    else:
                        outcomes = {
                            (False, False, j1, j2): p_join
                            for (j1, j2), p_join in joins.items()
                        }
                    for (l1, l2, j1, j2), p_outcome in outcomes.items():
                        if p_outcome <= 0.0:
                            continue
                        new_one = self._next_level(level_one, l1, j1)
                        new_two = self._next_level(level_two, l2, j2)
                        target = self._state_index(new_one, new_two)
                        matrix[source, target] += p_loss * p_outcome
        return matrix

    def _next_level(self, level: int, lost: bool, joined: bool) -> int:
        if lost:
            return max(level - 1, 1)
        if joined:
            return min(level + 1, self.num_layers)
        return level

    def stationary_distribution(self, tolerance: float = 1e-12, max_iterations: int = 200_000) -> np.ndarray:
        """Stationary distribution of the chain (power iteration)."""
        matrix = self.transition_matrix()
        size = matrix.shape[0]
        distribution = np.full(size, 1.0 / size)
        for _ in range(max_iterations):
            updated = distribution @ matrix
            updated /= updated.sum()
            if np.abs(updated - distribution).max() < tolerance:
                return updated
            distribution = updated
        return distribution

    def analyze(self) -> MarkovAnalysisResult:
        """Solve the chain and derive rates and redundancy."""
        stationary_flat = self.stationary_distribution()
        stationary = stationary_flat.reshape(self.num_layers, self.num_layers)
        levels = np.arange(1, self.num_layers + 1, dtype=float)
        cumulative = 2.0 ** (levels - 1.0)

        marginal_one = stationary.sum(axis=1)
        marginal_two = stationary.sum(axis=0)
        # A receiver's delivered rate discounts its end-to-end loss.
        delivery_one = (1.0 - self.shared_loss_rate) * (1.0 - self.loss_rates[0])
        delivery_two = (1.0 - self.shared_loss_rate) * (1.0 - self.loss_rates[1])
        rate_one = float((marginal_one * cumulative).sum() * delivery_one)
        rate_two = float((marginal_two * cumulative).sum() * delivery_two)

        max_level_rate = 0.0
        for index_one in range(self.num_layers):
            for index_two in range(self.num_layers):
                weight = stationary[index_one, index_two]
                max_level_rate += weight * cumulative[max(index_one, index_two)]

        return MarkovAnalysisResult(
            protocol=self.protocol,
            shared_loss_rate=self.shared_loss_rate,
            independent_loss_rates=self.loss_rates,
            stationary=stationary,
            receiver_rates=(rate_one, rate_two),
            shared_link_rate=float(max_level_rate),
            mean_levels=(
                float((marginal_one * levels).sum()),
                float((marginal_two * levels).sum()),
            ),
        )


def redundancy_vs_loss_split(
    protocol: str,
    total_independent_loss: float,
    splits: Sequence[float],
    shared_loss_rate: float = 0.0001,
    num_layers: int = 8,
) -> List[Tuple[float, float]]:
    """Redundancy as the fixed independent loss budget is split across receivers.

    ``splits`` are fractions in [0, 1]; a split ``s`` gives receiver 1 a loss
    rate of ``s * total`` and receiver 2 the remaining ``(1 - s) * total``.
    The paper's finding is that redundancy peaks at the even split
    (``s = 0.5``), i.e. when the receivers' end-to-end loss rates coincide.
    Returns ``(split, redundancy)`` pairs.
    """
    results = []
    for split in splits:
        if not 0.0 <= split <= 1.0:
            raise ProtocolError(f"split must lie in [0, 1], got {split}")
        model = TwoReceiverMarkovModel(
            protocol=protocol,
            shared_loss_rate=shared_loss_rate,
            loss_rate_one=split * total_independent_loss,
            loss_rate_two=(1.0 - split) * total_independent_loss,
            num_layers=num_layers,
        )
        results.append((split, model.analyze().redundancy))
    return results
