"""Bit-packed boolean matrices for the scan engine (uint64 words + popcount).

The batched event scan (:mod:`repro.protocols.scan`) spends its time on
receiver-major boolean matrices — ``receivable``, per-window ``recv`` and
``cong`` — whose reductions (first-congestion candidates, bulk reception
counts, segment refreshes) read one byte per packet column.  Per-receiver
loss indicators are single bits, so the ``engine="bitpacked"`` scan packs
64 packet columns into one ``uint64`` word (receiver-major: row ``r``,
word ``w`` holds columns ``64*w .. 64*w+63``, column ``c`` at bit
``c % 64``) and replaces the boolean reductions with masked popcounts.
This module holds the packing primitives; they are deliberately dependency
free so property tests can exercise them against dense NumPy equivalents.

Every helper is exact integer/bit arithmetic — no floating point — so the
packed scan's event sequence is bit-for-bit the dense scan's
(``tests/simulator/test_engine_equivalence.py`` holds the proof
obligations; ``tests/protocols/test_bitpack.py`` the per-helper ones).

Popcounts use :func:`numpy.bitwise_count` where available (NumPy >= 2.0)
and fall back to an ``unpackbits``-style byte table otherwise; see
:data:`HAVE_NATIVE_POPCOUNT`.
"""

from __future__ import annotations

import os
import sys

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "HAVE_NATIVE_POPCOUNT",
    "WORD_BITS",
    "PackedWindow",
    "bit_at",
    "clear_bits",
    "clear_cols",
    "clear_cols_and_bits",
    "counts_between",
    "first_set",
    "kth_set",
    "ones_rows",
    "pack_bits",
    "packed_width",
    "popcount",
    "prefix_counts",
    "prefix_counts_multi",
    "row_counts",
    "start_masks",
    "tail_mask",
    "unpack_bits",
    "word_base",
]

#: Packed word width: one ``uint64`` word holds 64 packet columns.
WORD_BITS = 64

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)

#: Whether :func:`numpy.bitwise_count` (NumPy >= 2.0) backs :func:`popcount`.
#: When false, popcounts run through a 256-entry per-byte table — same
#: results, roughly 8x the memory traffic.  Setting the
#: ``REPRO_FORCE_PORTABLE_POPCOUNT`` environment variable (to any non-empty
#: value) forces the table path even on NumPy >= 2.0, so CI can prove the
#: portable fallback stays bit-exact without pinning an old NumPy.
HAVE_NATIVE_POPCOUNT = hasattr(np, "bitwise_count") and not os.environ.get(
    "REPRO_FORCE_PORTABLE_POPCOUNT"
)

# Per-byte popcount table; also the rank-select helper's byte counter.
_BYTE_COUNTS = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1, dtype=np.uint8)

#: Whether a raw ``uint64 -> uint8`` view walks each word's bits in
#: ascending order (bit ``8j`` of the word lands in byte ``j``).  Gates the
#: byte-table fast path of :func:`kth_set`; the shift-based fallback is
#: byte-order free.
_LITTLE_ENDIAN = sys.byteorder == "little"

# Shared row-index scratch: the hot helpers index rows of matrices whose
# row count varies call to call, and allocating a fresh ``arange`` each
# time costs more than the indexing itself at scan-window sizes.
_IOTA = np.arange(1024)


def _iota(n: int) -> np.ndarray:
    """First ``n`` row indices from the shared scratch (grown on demand)."""
    global _IOTA
    if n > _IOTA.size:
        _IOTA = np.arange(max(n, 2 * _IOTA.size))
    return _IOTA[:n]

if HAVE_NATIVE_POPCOUNT:

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word count of set bits (shape-preserving, small unsigned dtype)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - NumPy < 2.0 or REPRO_FORCE_PORTABLE_POPCOUNT

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word count of set bits (shape-preserving, small unsigned dtype).

        Byte order within the word is irrelevant to the count, so the raw
        little-vs-big-endian view needs no correction.
        """
        words = np.ascontiguousarray(words)
        counts = _BYTE_COUNTS[words.view(np.uint8)]
        return counts.reshape(words.shape + (8,)).sum(axis=-1, dtype=np.uint8)


def packed_width(num_cols: int) -> int:
    """Words needed to hold ``num_cols`` columns."""
    return (int(num_cols) + WORD_BITS - 1) // WORD_BITS


def pack_bits(dense: np.ndarray) -> np.ndarray:
    """Pack a boolean array along its last axis into uint64 words.

    Column ``c`` lands in word ``c // 64`` at bit ``c % 64``; tail bits
    past the last column are zero.  Assembled byte-by-byte (explicit
    shifts), so the layout is identical on little- and big-endian hosts.
    """
    dense = np.asarray(dense, dtype=bool)
    as_bytes = np.packbits(dense, axis=-1, bitorder="little")
    pad = (-as_bytes.shape[-1]) % 8
    if pad:
        widths = as_bytes.shape[:-1] + (pad,)
        as_bytes = np.concatenate([as_bytes, np.zeros(widths, np.uint8)], axis=-1)
    grouped = as_bytes.reshape(as_bytes.shape[:-1] + (-1, 8)).astype(np.uint64)
    shifts = (np.arange(8, dtype=np.uint64) * np.uint64(8))
    return np.bitwise_or.reduce(grouped << shifts, axis=-1)


def unpack_bits(packed: np.ndarray, num_cols: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: a boolean array of ``num_cols`` columns."""
    packed = np.asarray(packed, dtype=np.uint64)
    shifts = (np.arange(8, dtype=np.uint64) * np.uint64(8))
    as_bytes = ((packed[..., None] >> shifts) & np.uint64(0xFF)).astype(np.uint8)
    flat = as_bytes.reshape(packed.shape[:-1] + (-1,))
    bits = np.unpackbits(flat, axis=-1, bitorder="little")
    return bits[..., :num_cols].astype(bool)


def ones_rows(num_rows: int, num_cols: int) -> np.ndarray:
    """All-true packed matrix of ``num_rows x num_cols`` (tail bits clear).

    Tail bits beyond ``num_cols`` must stay zero so row popcounts never
    overcount; every in-place mutation below preserves that invariant.
    """
    words = np.full((num_rows, packed_width(num_cols)), _ONES, dtype=np.uint64)
    tail = num_cols % WORD_BITS
    if tail:
        words[:, -1] = (_ONE << np.uint64(tail)) - _ONE
    return words


def clear_cols(packed: np.ndarray, cols: np.ndarray) -> None:
    """Clear the given columns in every row of ``packed`` (in place).

    ``cols`` may contain several columns of the same word; the mask is
    accumulated with an unbuffered scatter before the single row sweep.
    """
    if cols.size == 0:
        return
    mask = np.full(packed.shape[-1], _ONES, dtype=np.uint64)
    words = cols >> 6
    bits = _ONE << (cols & 63).astype(np.uint64)
    np.bitwise_and.at(mask, words, ~bits)
    packed &= mask


def _scatter_mask(
    shape: tuple,
    rows: np.ndarray,
    cols: np.ndarray,
    full_cols: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Word matrix with bit ``(rows[i], cols[i])`` set for every ``i``.

    ``full_cols``, when given, is additionally set across every row.  On
    little-endian hosts the bits are scattered into a byte-per-column
    scratch and ``packbits(bitorder="little")`` collapses it into words —
    one buffered fancy assignment instead of an unbuffered per-word
    scatter.  Big-endian hosts accumulate the *distinct* bit values with
    two ``bincount`` passes (a sum of distinct powers of two equals their
    bitwise OR, and each 32-bit half stays exact in the float64
    accumulator).
    """
    num_rows, num_words = shape
    if _LITTLE_ENDIAN:
        scratch = np.zeros((num_rows, num_words * WORD_BITS), dtype=np.uint8)
        scratch[rows, cols] = 1
        if full_cols is not None and full_cols.size:
            scratch[:, full_cols] = 1
        return np.packbits(scratch, axis=1, bitorder="little").view(np.uint64)
    words = cols >> 6
    bits = _ONE << (cols & 63).astype(np.uint64)
    lin = rows * num_words + words
    size = num_rows * num_words
    low = (bits & np.uint64(0xFFFFFFFF)).astype(np.float64)
    high = (bits >> np.uint64(32)).astype(np.float64)
    mask = np.bincount(lin, weights=high, minlength=size).astype(np.uint64)
    mask <<= np.uint64(32)
    mask |= np.bincount(lin, weights=low, minlength=size).astype(np.uint64)
    mask = mask.reshape(shape)
    if full_cols is not None and full_cols.size:
        shared = np.zeros(num_words, dtype=np.uint64)
        np.bitwise_or.at(
            shared, full_cols >> 6, _ONE << (full_cols & 63).astype(np.uint64)
        )
        mask |= shared[None, :]
    return mask


def clear_bits(packed: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> None:
    """Clear bit ``cols[i]`` of row ``rows[i]`` for every ``i`` (in place).

    The ``(row, col)`` pairs must be pairwise distinct (the engine's loss
    positions are).  Small batches use the unbuffered ``bitwise_and.at``
    scatter; large ones scatter into a byte-per-column scratch and
    ``packbits`` it into the clear mask (one cheap fancy assignment plus a
    vectorised pack instead of thousands of unbuffered word updates).
    """
    if cols.size == 0:
        return
    if cols.size < 512:
        words = cols >> 6
        bits = _ONE << (cols & 63).astype(np.uint64)
        np.bitwise_and.at(packed, (rows, words), ~bits)
        return
    mask = _scatter_mask(packed.shape, rows, cols)
    np.invert(mask, out=mask)
    packed &= mask


def clear_cols_and_bits(
    packed: np.ndarray,
    cols: np.ndarray,
    rows2: np.ndarray,
    cols2: np.ndarray,
) -> None:
    """Fused :func:`clear_cols` + :func:`clear_bits` (one row sweep, in place).

    Clears the whole columns ``cols`` in every row *and* the per-row bits
    ``(rows2[i], cols2[i])`` — the engine's shared plus independent loss
    scatter — touching the matrix once instead of twice.  Small per-row
    batches keep the unbuffered scatter (the whole-column mask still folds
    into the same sweep); large ones fold the shared-column clears into the
    ``packbits``-built mask before the single ``&=`` pass.
    """
    if cols2.size == 0:
        clear_cols(packed, cols)
        return
    if cols2.size < 512:
        if cols.size:
            shared = np.full(packed.shape[-1], _ONES, dtype=np.uint64)
            np.bitwise_and.at(
                shared, cols >> 6, ~(_ONE << (cols & 63).astype(np.uint64))
            )
            packed &= shared
        words2 = cols2 >> 6
        bits2 = _ONE << (cols2 & 63).astype(np.uint64)
        np.bitwise_and.at(packed, (rows2, words2), ~bits2)
        return
    mask = _scatter_mask(packed.shape, rows2, cols2, cols)
    np.invert(mask, out=mask)
    packed &= mask


def row_counts(words: np.ndarray) -> np.ndarray:
    """Set bits per row (int64)."""
    return popcount(words).sum(axis=-1, dtype=np.int64)


# _HIGH_MASKS[s] keeps bits >= s of a word (s in [0, 64]); _LOW_MASKS[k]
# keeps bits < k.  Table gathers replace the shift/clamp arithmetic in the
# hot mask builders (one fancy index instead of five ufunc passes).
_HIGH_MASKS = np.zeros(WORD_BITS + 1, dtype=np.uint64)
_HIGH_MASKS[:WORD_BITS] = _ONES << np.arange(WORD_BITS, dtype=np.uint64)
_LOW_MASKS = np.zeros(WORD_BITS + 1, dtype=np.uint64)
_LOW_MASKS[1:] = _ONES >> np.arange(WORD_BITS - 1, -1, -1, dtype=np.uint64)


def word_base(base_col: int, num_words: int) -> np.ndarray:
    """Absolute column of bit 0 of each word (precompute per window)."""
    return base_col + WORD_BITS * np.arange(num_words, dtype=np.int64)


def start_masks(
    starts: np.ndarray,
    base_col: int,
    num_words: int,
    bases: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-row masks keeping only bits at absolute columns ``>= starts[r]``.

    ``base_col`` is the absolute column of bit 0 of word 0 (a multiple of
    64).  Columns left of ``base_col`` are treated as already excluded.
    ``bases`` optionally reuses a precomputed :func:`word_base` row.
    """
    if bases is None:
        bases = word_base(base_col, num_words)
    shift = starts[:, None] - bases[None, :]
    np.maximum(shift, 0, out=shift)
    np.minimum(shift, WORD_BITS, out=shift)
    return _HIGH_MASKS[shift]


def tail_mask(
    stop: int,
    base_col: int,
    num_words: int,
    bases: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One mask row keeping only bits at absolute columns ``< stop``."""
    if bases is None:
        bases = word_base(base_col, num_words)
    keep = np.clip(stop - bases, 0, WORD_BITS)
    return _LOW_MASKS[keep]


def counts_between(
    words: np.ndarray,
    base_col: int,
    starts: np.ndarray,
    stops: np.ndarray,
    bases: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Set bits per row at absolute columns in ``[starts[r], stops[r])``.

    The chain drain's gap accounting: one row of the window's reception
    bits, one sorted pair of event-column boundaries per row, one masked
    popcount — the range mask is the conjunction of the :func:`start_masks`
    and :func:`tail_mask` table gathers.  Columns left of ``base_col`` are
    treated as excluded; empty ranges (``stops <= starts``) count zero.
    """
    if bases is None:
        bases = word_base(base_col, words.shape[-1])
    lo = starts[:, None] - bases[None, :]
    np.maximum(lo, 0, out=lo)
    np.minimum(lo, WORD_BITS, out=lo)
    hi = stops[:, None] - bases[None, :]
    np.maximum(hi, 0, out=hi)
    np.minimum(hi, WORD_BITS, out=hi)
    sel = _HIGH_MASKS[lo]
    sel &= _LOW_MASKS[hi]
    sel &= words
    return row_counts(sel)


def _cumulative_counts(words: np.ndarray) -> np.ndarray:
    """Per-row running popcount: ``cum[r, w]`` counts bits in words < ``w``."""
    num_rows, num_words = words.shape
    cum = np.zeros((num_rows, num_words + 1), dtype=np.int64)
    np.cumsum(popcount(words), axis=1, out=cum[:, 1:])
    return cum


def prefix_counts(words: np.ndarray, base_col: int, cols) -> np.ndarray:
    """Set bits strictly before the given per-row absolute columns.

    ``cols`` holds one column per row (``(rows,)``); the result is the
    ``(rows,)`` count of bits at columns ``< cols[r]`` — one masked
    popcount (bits below the column are exactly the complement of the
    :func:`start_masks` row).  For one shared column vector across all
    rows use :func:`prefix_counts_multi`.
    """
    below = start_masks(np.asarray(cols, dtype=np.int64), base_col, words.shape[-1])
    np.invert(below, out=below)
    below &= words
    return row_counts(below)


def prefix_counts_multi(words: np.ndarray, base_col: int, cols: np.ndarray) -> np.ndarray:
    """Set bits strictly before each shared column: ``(rows, len(cols))``."""
    num_rows, num_words = words.shape
    rel = np.asarray(cols, dtype=np.int64) - base_col
    word = rel >> 6
    cum = _cumulative_counts(words)
    low = _LOW_MASKS[rel & 63]
    if int(word.max(initial=0)) < num_words:
        # Every column lands inside the word range (the common case).
        partial = popcount(words[:, word] & low[None, :])
        return cum[:, word] + partial
    full = cum[:, np.minimum(word, num_words)]
    inside = word < num_words
    partial_words = words[:, np.minimum(word, num_words - 1)]
    partial = popcount(partial_words & low[None, :])
    return full + np.where(inside[None, :], partial, 0)


def bit_at(words: np.ndarray, base_col: int, cols) -> np.ndarray:
    """Bit value per row at the given absolute column(s).

    Scalar ``cols`` yields ``(rows,)``; a ``(k,)`` vector yields
    ``(rows, k)``.
    """
    rel = np.asarray(cols, dtype=np.int64) - base_col
    word = rel >> 6
    shift = (rel & 63).astype(np.uint64)
    if rel.ndim == 0:
        return ((words[:, int(word)] >> shift) & _ONE).astype(bool)
    return ((words[:, word] >> shift[None, :]) & _ONE).astype(bool)


def first_set(words: np.ndarray, base_col: int):
    """First set bit per row: ``(has, absolute_column)``.

    Rows without a set bit report ``has=False`` and an undefined column.
    The in-word position comes from the classic isolate-lowest-bit trick:
    ``popcount((w & -w) - 1)`` counts the zeros below the lowest set bit.
    """
    word_index = (words != 0).argmax(axis=1)
    word = words[_iota(words.shape[0]), word_index]
    has = word != 0
    lowest = word & np.negative(word)
    lowest -= _ONE
    trailing = popcount(lowest)
    col = word_index << 6
    col += trailing
    col += base_col
    return has, col


# _SELECT_IN_BYTE[b, r - 1] is the position of the r-th set bit of byte
# ``b`` (1-based rank; unused slots are 0).  256 x 8 is small enough to
# precompute eagerly and turns in-byte rank selection into one table read.
_SELECT_IN_BYTE = np.zeros((256, 8), dtype=np.int64)
for _byte in range(256):
    _where = [bit for bit in range(8) if _byte >> bit & 1]
    _SELECT_IN_BYTE[_byte, : len(_where)] = _where
del _byte, _where

_BYTE_SHIFTS = (np.arange(8, dtype=np.uint64) * np.uint64(8))


def kth_set(words: np.ndarray, base_col: int, k: np.ndarray) -> np.ndarray:
    """Absolute column of the ``k``-th set bit per row (1-based).

    Callers guarantee ``1 <= k[r] <= row_counts(words)[r]``.  Small
    batches on little-endian hosts view the row as raw bytes (byte ``j``
    of word ``w`` holds columns ``64w + 8j ..``): a per-byte table
    popcount and a running sum find the target byte, and the in-byte rank
    reads a precomputed 256 x 8 select table.  Larger batches (and
    big-endian hosts) walk words first — a word-level running popcount,
    then the target word's 8 bytes by explicit shifts — which touches an
    eighth of the columns per row.  Same results either way.  Rank-1
    selections — the overwhelmingly common case in the scan's join hooks
    — short-circuit to :func:`first_set`.
    """
    num_rows = words.shape[0]
    k = np.asarray(k, dtype=np.int64)
    if int(k.max(initial=1)) == 1:
        return first_set(words, base_col)[1]
    ones = k == 1
    if ones.any():
        # Mixed batch: peel the rank-1 rows off to the lowest-set-bit
        # shortcut and rank-select only the (typically few) deeper rows.
        col = np.empty(num_rows, dtype=np.int64)
        oidx = ones.nonzero()[0]
        col[oidx] = first_set(words[oidx], base_col)[1]
        didx = (~ones).nonzero()[0]
        col[didx] = kth_set(words[didx], base_col, k[didx])
        return col
    rows = _iota(num_rows)
    if _LITTLE_ENDIAN and num_rows <= 48:
        # The byte walk runs over 8x the columns of the word walk, so its
        # flat-per-row savings only pay below a few dozen rows.
        row_bytes = np.ascontiguousarray(words).view(np.uint8)
        cum = _BYTE_COUNTS[row_bytes].cumsum(axis=1, dtype=np.int64)
        byte_index = (cum >= k[:, None]).argmax(axis=1)
        byte = row_bytes[rows, byte_index]
        # Rank within the byte: bits before it are the running count minus
        # the byte's own contribution.
        rank = k - cum[rows, byte_index]
        rank += _BYTE_COUNTS[byte]
        col = byte_index << 3
        col += _SELECT_IN_BYTE[byte, rank - 1]
        col += base_col
        return col
    cum = _cumulative_counts(words)
    word_index = (cum[:, 1:] >= k[:, None]).argmax(axis=1)
    rank = k - cum[rows, word_index]
    word = words[rows, word_index]
    word_bytes = (word[:, None] >> _BYTE_SHIFTS) & np.uint64(0xFF)
    byte_cum = popcount(word_bytes).cumsum(axis=1, dtype=np.int64)
    byte_index = (byte_cum >= rank[:, None]).argmax(axis=1)
    rank -= np.where(byte_index > 0, byte_cum[rows, byte_index - 1], 0)
    byte = word_bytes[rows, byte_index].astype(np.int64)
    bit = 8 * byte_index + _SELECT_IN_BYTE[byte, rank - 1]
    return base_col + WORD_BITS * word_index.astype(np.int64) + bit


@dataclass
class PackedWindow:
    """One scan window's packed reception bits, handed to protocol hooks.

    Attributes
    ----------
    words:
        Receiver-major packed reception matrix (rows are the active
        receivers of the call), already masked to each receiver's
        unconsumed columns and to the window's column range.
    base_col:
        Absolute column of bit 0 of ``words[:, 0]`` (a multiple of 64).
    col_lo / col_hi:
        The (segment) column range the view represents: ``[col_lo,
        col_hi)`` in absolute chunk columns.  Bits outside it are zero.
    num_obs_cols:
        Number of *observable* columns in the range (layer at most the
        window's top subscription) — an upper bound on any row's
        receptions, used by join hooks to prune candidates.
    last_obs_col:
        Largest observable column in the window (``-1`` when none); the
        Coordinated protocol's sync-point anchor.
    """

    words: np.ndarray
    base_col: int
    col_lo: int
    col_hi: int
    num_obs_cols: int
    last_obs_col: int

    def counts(self, rows=None) -> np.ndarray:
        """Receptions per (selected) row."""
        words = self.words if rows is None else self.words[rows]
        return row_counts(words)

    def bit_at(self, cols, rows=None) -> np.ndarray:
        """Reception bit per (selected) row at absolute column(s)."""
        words = self.words if rows is None else self.words[rows]
        return bit_at(words, self.base_col, cols)

    def prefix_counts_multi(self, cols: np.ndarray) -> np.ndarray:
        """Receptions strictly before each shared absolute column."""
        return prefix_counts_multi(self.words, self.base_col, cols)

    def kth_set(self, rows: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Absolute column of each selected row's ``k``-th reception."""
        return kth_set(self.words[rows], self.base_col, k)

    def prefix_counts(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Receptions strictly before each selected row's absolute column."""
        return prefix_counts(self.words[rows], self.base_col, cols)
