"""Numba-jitted lowering of the packed scan primitives (``engine="compiled"``).

The bit-packed drain's NumPy primitives each stream one or more
intermediate arrays per call — a mask gather, an invert, an AND, a
popcount, a reduction.  This module re-lowers the hottest of them
(:class:`~repro.protocols.kernel.PackedOps` overrides) as single-pass
``@njit`` loops with per-row early exit and zero temporaries: a SWAR
popcount, lowest-set-bit first-hit, masked prefix/range popcounts, the
fused consumed-bit credit and the chain drain's suffix rebuild.

Everything here is *bit-exact* with the NumPy primitives it replaces —
``engine="compiled"`` rides the identical :class:`ScanKernel` decision
sequence through :func:`~repro.protocols.scan.scan_chunk_bitpacked`, so
the cross-engine conformance matrix and the differential fuzzer pin it
against the other three engines without compiled-specific cases.

Importing this module requires :mod:`numba`;
:func:`~repro.protocols.kernel.backend_ops_for` catches the
``ImportError`` and falls back to the NumPy packed primitives, so
``engine="compiled"`` stays selectable (at bitpacked speed) when numba is
absent.

Numba notes: all bit arithmetic stays in ``uint64`` via module-level
``np.uint64`` constants — mixing a ``uint64`` with a signed literal
promotes to ``float64`` under NumPy semantics and corrupts the masks.
There is no trailing-zero-count intrinsic, so first-hit columns use the
isolate-lowest-bit identity ``popcount((w & (~w + 1)) - 1)``.
"""

from __future__ import annotations

import numpy as np

from numba import njit

from .kernel import PackedOps

__all__ = ["CompiledOps", "COMPILED_OPS"]

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_U0 = np.uint64(0)
_U1 = np.uint64(1)
# SWAR popcount constants (Hacker's Delight 5-2).
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_S1 = np.uint64(1)
_S2 = np.uint64(2)
_S4 = np.uint64(4)
_S56 = np.uint64(56)


@njit(cache=True, inline="always")
def _popcount(x):
    x = x - ((x >> _S1) & _M1)
    x = (x & _M2) + ((x >> _S2) & _M2)
    x = (x + (x >> _S4)) & _M4
    return int((x * _H01) >> _S56)


@njit(cache=True, inline="always")
def _ctz(x):
    # Trailing zeros of a non-zero word: zeros below the isolated lowest
    # set bit.  ``~x + 1`` is two's-complement negation kept in uint64.
    return _popcount((x & (~x + _U1)) - _U1)


@njit(cache=True)
def _row_counts(words):
    num_rows, num_words = words.shape
    out = np.zeros(num_rows, dtype=np.int64)
    for r in range(num_rows):
        total = 0
        for w in range(num_words):
            total += _popcount(words[r, w])
        out[r] = total
    return out


@njit(cache=True)
def _first_set(words, base_col):
    num_rows, num_words = words.shape
    has = np.zeros(num_rows, dtype=np.bool_)
    col = np.zeros(num_rows, dtype=np.int64)
    for r in range(num_rows):
        for w in range(num_words):
            x = words[r, w]
            if x != _U0:
                has[r] = True
                col[r] = base_col + (w << 6) + _ctz(x)
                break
    return has, col


@njit(cache=True)
def _prefix_counts(words, base_col, cols):
    num_rows, num_words = words.shape
    out = np.zeros(num_rows, dtype=np.int64)
    for r in range(num_rows):
        rel = cols[r] - base_col
        if rel <= 0:
            continue
        wi = rel >> 6
        lim = wi if wi < num_words else num_words
        total = 0
        for w in range(lim):
            total += _popcount(words[r, w])
        part = rel & 63
        if wi < num_words and part != 0:
            total += _popcount(words[r, wi] & ((_U1 << np.uint64(part)) - _U1))
        out[r] = total
    return out


@njit(cache=True)
def _counts_between(words, base_col, starts, stops):
    num_rows, num_words = words.shape
    span = num_words << 6
    out = np.zeros(num_rows, dtype=np.int64)
    for r in range(num_rows):
        a = starts[r] - base_col
        b = stops[r] - base_col
        if a < 0:
            a = 0
        if b > span:
            b = span
        if b <= a:
            continue
        wa = a >> 6
        wb = b >> 6
        w_end = wb if wb < num_words else num_words - 1
        total = 0
        for w in range(wa, w_end + 1):
            x = words[r, w]
            lo = a - (w << 6)
            if lo > 0:
                x &= _ONES << np.uint64(lo)
            hi = b - (w << 6)
            if hi < 64:
                x &= (_U1 << np.uint64(hi)) - _U1
            total += _popcount(x)
        out[r] = total
    return out


@njit(cache=True)
def _gather_andnot_counts(recv, hit, ahead):
    num_hit, num_words = ahead.shape
    out = np.zeros(num_hit, dtype=np.int64)
    for i in range(num_hit):
        r = hit[i]
        total = 0
        for w in range(num_words):
            total += _popcount(recv[r, w] & ~ahead[i, w])
        out[i] = total
    return out


@njit(cache=True)
def _chain_rebuild(masks_here, w_off, levels_rows, pos_rows, edge_word,
                   base_ws, ok_rows, recv_hit, chain_l, ws):
    num_chain = chain_l.shape[0]
    num_words = recv_hit.shape[1] - ws
    has = np.zeros(num_chain, dtype=np.bool_)
    col = np.zeros(num_chain, dtype=np.int64)
    for i in range(num_chain):
        row = chain_l[i]
        lev = levels_rows[i]
        p = pos_rows[i]
        found = False
        c = 0
        for j in range(num_words):
            m = masks_here[lev, w_off + j]
            base_j = base_ws + (j << 6)
            s = p - base_j
            if s >= 64:
                m = _U0
            elif s > 0:
                m &= _ONES << np.uint64(s)
            if j == num_words - 1:
                m &= edge_word
            r_word = m & ok_rows[i, j]
            c_word = m ^ r_word
            recv_hit[row, ws + j] = r_word
            if (not found) and c_word != _U0:
                found = True
                c = base_j + _ctz(c_word)
        has[i] = found
        col[i] = c
    return has, col


class CompiledOps(PackedOps):
    """Packed primitives re-lowered as Numba single-pass loops.

    Only the reductions whose NumPy compositions dominate the packed
    drain's profile are overridden; mask *builds* (``start_masks``,
    ``tail_mask``) stay NumPy table gathers because their outputs are
    reused as arrays by the scan itself.
    """

    @staticmethod
    def first_set(words, base_col):
        return _first_set(words, base_col)

    @staticmethod
    def row_counts(words):
        if words.ndim == 1:
            return _row_counts(words[None, :])[0]
        return _row_counts(words)

    @staticmethod
    def prefix_counts(words, base_col, cols):
        return _prefix_counts(words, base_col, np.asarray(cols, dtype=np.int64))

    @staticmethod
    def counts_between(words, base_col, starts, stops, bases=None):
        return _counts_between(
            words, base_col,
            np.asarray(starts, dtype=np.int64),
            np.asarray(stops, dtype=np.int64),
        )

    @staticmethod
    def gather_andnot_counts(recv, hit, ahead):
        return _gather_andnot_counts(recv, np.asarray(hit, dtype=np.int64), ahead)

    @staticmethod
    def chain_rebuild(masks_here, w_off, levels_rows, pos_rows, edge_word,
                      base_ws, bases_ws, ok_rows, recv_hit, chain_l, ws):
        return _chain_rebuild(
            masks_here, w_off,
            np.asarray(levels_rows, dtype=np.int64),
            np.asarray(pos_rows, dtype=np.int64),
            edge_word, base_ws, ok_rows, recv_hit,
            np.asarray(chain_l, dtype=np.int64), ws,
        )


COMPILED_OPS = CompiledOps()
