"""Chunked per-receiver event scan — the core of the batched protocol engine.

The Section-4 protocols are *receiver-local*: given the loss outcomes of
every scheduled packet, one receiver's subscription level and join counters
evolve independently of every other receiver's (the only cross-receiver
coupling — which layers the shared link carries — affects measurement, not
protocol state, because a packet some receiver is subscribed to is always
carried).  The scan below exploits that:

* loss outcomes are pre-sampled for a whole *chunk* of time units from the
  run's counter-based streams (``RNG_SCHEME_VERSION >= 4``), which is
  possible because the loss draws cover every scheduled packet regardless
  of simulation state;
* each receiver's trajectory through the chunk is a sparse sequence of
  *events* (congestion-driven leaves/counter resets and joins) separated by
  stretches of plain packet reception;
* every iteration of the scan finds, for all still-active receivers at
  once, the first packet at which each receiver's state changes — computed
  with array operations under the receiver's current (frozen) state, which
  is exact precisely because nothing changes before the first event;
* the stretch before each event is accounted in bulk (received-packet
  counts, join-counter increments), the event itself is applied, and the
  scan continues from the next packet.

Matrices are laid out **receiver-major** — one row per receiver, one column
per packet — so the per-receiver reductions (first event, bulk counts) run
along contiguous memory.  Columns are restricted twice over: to packets of
layers no higher than the highest subscription among active receivers, and
to a bounded window ahead of the scan front, so per-iteration work tracks
the event spacing rather than the chunk size.

The high-correlated-loss regime (Figure 8(b)) additionally rides a **fused
event drain**: a synchronized (shared-loss) event congests many receivers
at the same column, and the scan drains all of them in a single iteration
— one vectorised pass applies every receiver's bulk reception credit and
congestion reaction at once — after which only the window *segment past
the drained column* is recomputed, with first-congestion candidates cached
for the untouched rows.  Per-event cost therefore tracks the segment
between synchronized events instead of the full receiver x window matrix.

**Bit-packed variant.**  ``engine="bitpacked"`` runs the same event scan on
``uint64``-packed matrices (:mod:`repro.protocols.bitpack`): the engine
scatters its sparse loss positions straight into packed ``receivable``
words, the per-window ``recv``/``cong`` matrices are packed bit fields,
and every boolean reduction becomes a masked popcount — first-congestion
candidates via lowest-set-bit isolation, bulk reception credits via prefix
popcounts, segment refreshes via per-row range masks.  One word carries 64
packet columns, so the window matrices shrink 8x and the scan affords
windows an order of magnitude wider (fewer Python-level iterations) at the
same memory traffic.  :func:`scan_chunk_bitpacked` mirrors
:func:`scan_chunk` decision for decision; both are bit-for-bit identical
to the reference loop for any window or chunk size.

The scan produces results bit-for-bit identical to the per-packet reference
engine for any window size or chunk size;
``tests/simulator/test_engine_equivalence.py`` holds the proof obligations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from . import bitpack

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from .base import LayeredProtocol

__all__ = ["UnitChunk", "ChunkResult", "scan_chunk", "scan_chunk_bitpacked"]


@dataclass
class UnitChunk:
    """Pre-sampled inputs for a contiguous run of sender time units.

    Attributes
    ----------
    start_unit / num_units / packets_per_unit:
        The chunk covers time units ``start_unit .. start_unit+num_units``;
        packet column ``c`` belongs to unit ``start_unit + c //
        packets_per_unit``.
    num_layers:
        Top subscription level of the layer scheme.
    layers:
        Layer of every packet column (the unit pattern, tiled).
    shared_lost / independent_lost:
        Dense pre-sampled loss outcomes: ``(n,)`` for the shared link and
        receiver-major ``(num_receivers, n)`` for the fan-out links.  When
        several runs are stacked into one chunk, ``shared_lost`` holds one
        row per run.  Only materialised for protocols that declare
        ``needs_dense_losses`` (the active-node group drain); the generic
        scan reads ``receivable`` alone, which the engine scatters from
        sparse loss positions.
    receivable:
        Pre-combined reception outcome (``~shared & ~independent`` per
        receiver row); computed from the dense loss arrays when absent.
    cols_for_level:
        ``cols_for_level[l]`` lists the packet columns with ``layer <= l``
        — the packets a level-``l`` receiver can observe.
    observed_before:
        ``observed_before[l, c]`` counts the packet columns before ``c``
        with ``layer <= l`` (shape ``(num_layers + 1, n + 1)``); an upper
        bound on what a level-``l`` receiver can receive, used to prune
        unreachable join opportunities.
    sync_cols / sync_ok:
        Columns of unit-initial packets carrying sender sync marks, and a
        ``(len(sync_cols), num_levels+2)`` table with ``sync_ok[i, l]``
        true when level ``l`` may join at that sync point.
    times:
        Absolute transmission time per column; only materialised when the
        engine tracks leave-latency advertisements.
    scan_window:
        Maximum observed columns one scan iteration examines (0 =
        unbounded).  Purely a performance knob — results are identical for
        any value.
    receivable_packed / layer_masks_packed:
        The bit-packed engine's inputs (``None`` elsewhere): ``uint64``
        words packing ``receivable`` column-wise (column ``c`` at word
        ``c // 64``, bit ``c % 64``; see :mod:`repro.protocols.bitpack`)
        and one packed ``layer <= level`` column mask per subscription
        level (``(num_layers + 1, ceil(n / 64))``).  A chunk carries
        either the packed or the dense representation, never both;
        :meth:`~repro.protocols.base.LayeredProtocol.step_chunk`
        dispatches on which one is present.
    """

    start_unit: int
    num_units: int
    packets_per_unit: int
    num_layers: int
    layers: np.ndarray
    shared_lost: Optional[np.ndarray]
    independent_lost: Optional[np.ndarray]
    cols_for_level: Sequence[np.ndarray]
    observed_before: np.ndarray
    sync_cols: np.ndarray
    sync_ok: np.ndarray
    times: Optional[np.ndarray] = None
    scan_window: int = 0
    receivable: Optional[np.ndarray] = None
    receivable_packed: Optional[np.ndarray] = None
    layer_masks_packed: Optional[np.ndarray] = None

    @property
    def num_packets(self) -> int:
        return int(self.layers.size)


@dataclass
class ChunkResult:
    """What one chunk of simulation did to the session.

    ``received`` counts packets received per receiver over the chunk.  The
    ``event_*`` arrays record every subscription-level change (one entry per
    receiver per change, in increasing packet order per receiver): the
    packet column it happened at, the receiver, and the levels before/after
    — enough for the engine to reconstruct per-packet carriage and
    leave-latency advertisements without re-simulating.
    """

    received: np.ndarray
    event_cols: np.ndarray
    event_receivers: np.ndarray
    event_old_levels: np.ndarray
    event_new_levels: np.ndarray

    @property
    def num_events(self) -> int:
        return int(self.event_cols.size)


def _concat(parts: List[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=np.int64)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def scan_chunk(
    protocol: "LayeredProtocol",
    chunk: UnitChunk,
    levels: np.ndarray,
) -> ChunkResult:
    """Advance ``levels`` (in place) through one chunk; see module docstring.

    The protocol participates through the hooks
    :meth:`~repro.protocols.base.LayeredProtocol.scan_first_join` and
    :meth:`~repro.protocols.base.LayeredProtocol.scan_boundary` (join
    detection under frozen state) plus the bookkeeping mirrors
    :meth:`~repro.protocols.base.LayeredProtocol.scan_bulk_received`,
    :meth:`~repro.protocols.base.LayeredProtocol.scan_congested`,
    :meth:`~repro.protocols.base.LayeredProtocol.scan_left` and
    :meth:`~repro.protocols.base.LayeredProtocol.scan_joined`.
    """
    num_receivers = levels.size

    # Receiver-local reception outcome if subscribed: neither link lost it.
    receivable = chunk.receivable
    if receivable is None:
        receivable = ~chunk.independent_lost & ~chunk.shared_lost[None, :]

    received_counts = np.zeros(num_receivers, dtype=np.int64)
    ev_cols: List[np.ndarray] = []
    ev_rec: List[np.ndarray] = []
    ev_old: List[np.ndarray] = []
    ev_new: List[np.ndarray] = []

    n = chunk.num_packets
    window = chunk.scan_window or n
    # Narrow dtypes keep the broadcast comparisons below memory-light.
    layers = chunk.layers.astype(np.int16, copy=False)

    everyone = np.arange(num_receivers)
    pos = np.zeros(num_receivers, dtype=np.int32)
    lo = 0
    while lo < n:
        # ---- establish one window of observable columns -----------------
        top = int(levels.max())
        cols_all = chunk.cols_for_level[top]
        first = np.searchsorted(cols_all, lo) if lo else 0
        if first >= cols_all.size:
            break
        capped = cols_all.size - first > window
        cols = cols_all[first:first + window]
        # The window ends just before the next column anyone could observe
        # (skipping unobservable higher-layer packets costs nothing).
        window_end = int(cols_all[first + window]) if capped else n
        boundary = protocol.scan_boundary(chunk, lo, everyone, levels, pos)
        if boundary < window_end:
            cols = cols[:np.searchsorted(cols, boundary)]
            window_end = boundary
            if cols.size == 0:
                # Nothing observable before the boundary; hop across.
                np.maximum(pos, window_end, out=pos)
                lo = window_end
                continue

        num_cols = cols.size
        if int(cols[-1]) - int(cols[0]) + 1 == num_cols:
            # Contiguous column range (every layer observable): slice views
            # instead of fancy-index copies.
            span = slice(int(cols[0]), int(cols[-1]) + 1)
            layer_row = layers[span][None, :]
            ok = receivable[:, span]
        else:
            layer_row = layers[cols][None, :]
            ok = receivable[:, cols]
        sub = layer_row <= levels.astype(np.int16)[:, None]
        recv = sub & ok
        cong = sub ^ recv  # subscribed and not received = congested
        if int(pos.max()) > lo:
            # Receivers that processed an event past a truncated window
            # must not see the columns they already consumed.
            valid = cols[None, :] >= pos[:, None]
            recv &= valid
            cong &= valid

        has_join = np.zeros(num_receivers, dtype=bool)
        e_join = np.zeros(num_receivers, dtype=np.int64)
        join = protocol.scan_first_join(chunk, cols, everyone, levels, recv, pos, fresh=True)
        if join is not None:
            has_join, e_join = join

        # ---- drain the window's events, touching only changed rows ------
        # First-congestion candidates are cached and refreshed only for the
        # rows each iteration changed, so per-iteration work tracks the hit
        # set instead of the full receiver x window matrix.
        iota = np.arange(num_cols, dtype=np.int32)
        truncate_at = -1
        e_cong = cong.argmax(axis=1)
        has_cong = cong[everyone, e_cong]
        while True:
            has_event = has_cong | has_join
            if not has_event.any():
                break
            # Congestion and join columns are disjoint per receiver, so the
            # earlier of the two (when both exist) is the true first event.
            was_cong = has_cong & (~has_join | (e_cong < e_join))
            e_slice = np.where(was_cong, e_cong, e_join)
            hit = np.nonzero(has_event)[0]
            e_hit = e_slice[hit]
            event_cols = cols[e_hit]
            # Receptions strictly before each event column (rows are
            # already masked below each receiver's position).
            bulk = (recv[hit] & (iota[None, :] < e_hit[:, None].astype(np.int32))).sum(
                axis=1, dtype=np.int64
            )
            received_counts[hit] += bulk
            protocol.scan_bulk_received(hit, bulk)
            hit_cong = was_cong[hit]
            cidx = hit[hit_cong]
            if cidx.size:
                protocol.scan_congested(cidx)
                leave = levels[cidx] > 1
                lidx = cidx[leave]
                if lidx.size:
                    ev_cols.append(event_cols[hit_cong][leave].astype(np.int64))
                    ev_rec.append(lidx)
                    ev_old.append(levels[lidx])
                    levels[lidx] -= 1
                    ev_new.append(levels[lidx])
                    protocol.scan_left(lidx, levels[lidx])
            jidx = hit[~hit_cong]
            if jidx.size:
                # The join-triggering packet was itself received.
                received_counts[jidx] += 1
                protocol.scan_joined(jidx, levels[jidx] + 1)
                join_cols = event_cols[~hit_cong]
                ev_cols.append(join_cols.astype(np.int64))
                ev_rec.append(jidx)
                ev_old.append(levels[jidx])
                levels[jidx] += 1
                ev_new.append(levels[jidx])
                raised = levels[jidx] > top
                if raised.any():
                    # A receiver outgrew the window's layer slice: packets
                    # above ``top`` are missing from these columns, so its
                    # scan must resume in a wider window.  Close this one
                    # *before* the first such join — the joiner itself has
                    # consumed its column, while receivers whose first event
                    # came earlier still need their look at it.
                    truncate_at = int(join_cols[raised].min())
            pos[hit] = event_cols + 1
            if truncate_at >= 0:
                # Close the window at the earliest hit position: receivers
                # whose event came earlier may still have unevaluated
                # events between there and the truncating join, so only
                # event-free receivers may be bulk-advanced past it.  The
                # next (wider) window re-examines everything beyond.
                window_end = int(pos[hit].min())
                break
            # ---- fused segment refresh ------------------------------
            # Every hit row's scan resumes at or beyond the earliest
            # drained column, so only the window segment past it is
            # recomputed.  Synchronized (shared-loss) events — where most
            # rows drain the same column at once — therefore cost one
            # short vectorised segment pass instead of a full-window
            # recomputation per event generation.
            resume = int(np.searchsorted(cols, int(pos[hit].min())))
            recv[hit, :resume] = False
            cong[hit, :resume] = False
            if resume == num_cols:
                # The drained column closed the window for these rows.
                has_cong[hit] = False
                has_join[hit] = False
                continue
            sub_hit = layer_row[:, resume:] <= levels[hit].astype(np.int16)[:, None]
            recv_hit = sub_hit & ok[hit, resume:]
            cong_hit = sub_hit ^ recv_hit
            valid_hit = cols[None, resume:] >= pos[hit][:, None]
            recv_hit &= valid_hit
            cong_hit &= valid_hit
            recv[hit, resume:] = recv_hit
            cong[hit, resume:] = cong_hit
            segment_cong = cong_hit.argmax(axis=1)
            e_cong[hit] = resume + segment_cong
            has_cong[hit] = cong_hit[np.arange(hit.size), segment_cong]
            join = protocol.scan_first_join(
                chunk, cols[resume:], hit, levels[hit], recv_hit, pos[hit], fresh=False
            )
            if join is None:
                has_join[hit] = False
            else:
                has_join[hit], segment_join = join
                e_join[hit] = resume + segment_join

        # ---- close the window: bulk everyone to its end ------------------
        if truncate_at >= 0:
            # Hit receivers' rows are stale (the loop broke before their
            # refresh); their position masks keep their contribution empty,
            # which is exact because the window closes at the earliest hit.
            closing = (
                recv
                & (cols[None, :] < np.int32(window_end))
                & (cols[None, :] >= pos[:, None])
            ).sum(axis=1, dtype=np.int64)
        else:
            closing = recv.sum(axis=1, dtype=np.int64)
        received_counts += closing
        protocol.scan_bulk_received(everyone, closing)
        np.maximum(pos, window_end, out=pos)
        lo = window_end

    return ChunkResult(
        received=received_counts,
        event_cols=_concat(ev_cols),
        event_receivers=_concat(ev_rec),
        event_old_levels=_concat(ev_old),
        event_new_levels=_concat(ev_new),
    )


def scan_chunk_bitpacked(
    protocol: "LayeredProtocol",
    chunk: UnitChunk,
    levels: np.ndarray,
) -> ChunkResult:
    """Advance ``levels`` through one chunk on bit-packed matrices.

    Same event scan as :func:`scan_chunk`, decision for decision — window
    establishment, first-event selection, fused drain, segment refresh and
    window closing all mirror the dense code — but ``recv``/``cong`` are
    ``uint64`` words (64 packet columns each) and every reduction is a
    masked popcount (:mod:`repro.protocols.bitpack`).  Protocols
    participate through :meth:`~repro.protocols.base.LayeredProtocol.
    scan_first_join_packed` (a :class:`~repro.protocols.bitpack.
    PackedWindow` instead of a dense reception matrix) plus the same
    bookkeeping hooks; event columns are absolute chunk columns
    throughout, which orders events exactly as the dense scan's
    window-relative indices do.
    """
    num_receivers = levels.size
    okp = chunk.receivable_packed
    level_masks = chunk.layer_masks_packed
    assert okp is not None and level_masks is not None

    received_counts = np.zeros(num_receivers, dtype=np.int64)
    ev_cols: List[np.ndarray] = []
    ev_rec: List[np.ndarray] = []
    ev_old: List[np.ndarray] = []
    ev_new: List[np.ndarray] = []

    n = chunk.num_packets
    window = chunk.scan_window or n
    everyone = np.arange(num_receivers)
    pos = np.zeros(num_receivers, dtype=np.int64)
    lo = 0
    while lo < n:
        # ---- establish one window of observable columns -----------------
        top = int(levels.max())
        cols_all = chunk.cols_for_level[top]
        first = np.searchsorted(cols_all, lo) if lo else 0
        if first >= cols_all.size:
            break
        capped = cols_all.size - first > window
        window_end = int(cols_all[first + window]) if capped else n
        boundary = protocol.scan_boundary(chunk, lo, everyone, levels, pos)
        if boundary < window_end:
            window_end = boundary
            hi = int(np.searchsorted(cols_all, boundary))
            if hi == first:
                # Nothing observable before the boundary; hop across.
                np.maximum(pos, window_end, out=pos)
                lo = window_end
                continue
            num_obs = hi - first
            last_obs = int(cols_all[hi - 1])
        elif capped:
            num_obs = window
            last_obs = int(cols_all[first + window - 1])
        else:
            num_obs = cols_all.size - first
            last_obs = int(cols_all[-1])

        w_lo = lo >> 6
        w_hi = (window_end + 63) >> 6
        base_col = w_lo << 6
        num_words = w_hi - w_lo
        bases = bitpack.word_base(base_col, num_words)
        ok = okp[:, w_lo:w_hi]
        masks_here = level_masks[:, w_lo:w_hi]
        sub = masks_here[levels]
        sub &= bitpack.start_masks(np.maximum(pos, lo), base_col, num_words, bases)
        high_edge = bitpack.tail_mask(window_end, base_col, num_words, bases)
        sub &= high_edge
        recv = sub & ok
        cong = sub ^ recv

        view = bitpack.PackedWindow(recv, base_col, lo, window_end, num_obs, last_obs)
        join = protocol.scan_first_join_packed(chunk, view, everyone, levels, pos, fresh=True)
        if join is None:
            has_join = np.zeros(num_receivers, dtype=bool)
            e_join = np.zeros(num_receivers, dtype=np.int64)
        else:
            has_join, e_join = join

        # ---- drain the window's events, touching only changed rows ------
        # ``cong`` is consumed once by the candidate cache below; after
        # that only the cached (has_cong, e_cong) pair and the per-refresh
        # recomputation are ever read, so the drain never stores congestion
        # rows back.
        truncate_at = -1
        has_cong, e_cong = bitpack.first_set(cong, base_col)
        while True:
            hit = np.nonzero(has_cong | has_join)[0]
            if hit.size == 0:
                break
            was_cong = has_cong & (~has_join | (e_cong < e_join))
            e_col = np.where(was_cong, e_cong, e_join)
            event_cols = e_col[hit]
            hit_cong = was_cong[hit]
            join_rows = ~hit_cong
            # One mask build serves both sides of the event: its complement
            # selects the consumed bits (receptions up to and including the
            # event column), the mask itself the refresh range beyond it.
            ahead = bitpack.start_masks(event_cols + 1, base_col, num_words, bases)
            consumed = recv[hit]
            consumed &= ~ahead
            credited = bitpack.row_counts(consumed)
            # ``credited`` includes the join-triggering packet itself (a
            # received bit at the event column); congestion columns were
            # not received, so their rows credit strictly-before bits only.
            received_counts[hit] += credited
            jidx = hit[join_rows]
            if jidx.size:
                bulk = credited.copy()
                bulk[join_rows] -= 1
            else:
                bulk = credited
            protocol.scan_bulk_received(hit, bulk)
            cidx = hit[hit_cong]
            if cidx.size:
                protocol.scan_congested(cidx)
                leave = levels[cidx] > 1
                lidx = cidx[leave]
                if lidx.size:
                    ev_cols.append(event_cols[hit_cong][leave])
                    ev_rec.append(lidx)
                    ev_old.append(levels[lidx])
                    levels[lidx] -= 1
                    ev_new.append(levels[lidx])
                    protocol.scan_left(lidx, levels[lidx])
            if jidx.size:
                protocol.scan_joined(jidx, levels[jidx] + 1)
                join_cols = event_cols[join_rows]
                ev_cols.append(join_cols)
                ev_rec.append(jidx)
                ev_old.append(levels[jidx])
                levels[jidx] += 1
                ev_new.append(levels[jidx])
                raised = levels[jidx] > top
                if raised.any():
                    # A receiver outgrew the window's layer slice; close the
                    # window before the first such join (see scan_chunk).
                    truncate_at = int(join_cols[raised].min())
            pos[hit] = event_cols + 1
            if truncate_at >= 0:
                window_end = int(pos[hit].min())
                break
            # ---- fused segment refresh ------------------------------
            # Hit rows are rebuilt over the window's words under their new
            # levels and positions — a handful of word ops per row however
            # wide the window — while untouched rows keep their cached
            # first-congestion candidates.
            seg_lo = int(pos[hit].min())
            if seg_lo > last_obs:
                # The drained column closed the window for these rows:
                # every observable column is behind their positions, so
                # their consumed bits must vanish before the window-close
                # bulk (the dense scan zeroes the same prefix).
                recv[hit] = 0
                has_cong[hit] = False
                has_join[hit] = False
                continue
            # ``ahead`` (bits >= event + 1) is exactly the hit rows' new
            # position mask, so the refresh reuses it instead of building
            # another; ``sub_hit`` is a fresh gather, masked in place.
            ahead &= high_edge
            sub_hit = masks_here[levels[hit]]
            sub_hit &= ahead
            recv_hit = sub_hit & ok[hit]
            cong_hit = sub_hit ^ recv_hit
            recv[hit] = recv_hit
            has_cong[hit], e_cong[hit] = bitpack.first_set(cong_hit, base_col)
            seg_obs = int(
                chunk.observed_before[top, window_end]
                - chunk.observed_before[top, seg_lo]
            )
            seg_view = bitpack.PackedWindow(
                recv_hit, base_col, seg_lo, window_end, seg_obs, last_obs
            )
            join = protocol.scan_first_join_packed(
                chunk, seg_view, hit, levels[hit], pos[hit], fresh=False
            )
            if join is None:
                has_join[hit] = False
            else:
                has_join[hit], e_join[hit] = join

        # ---- close the window: bulk everyone to its end ------------------
        if truncate_at >= 0:
            # Hit receivers' rows are stale (the loop broke before their
            # refresh); re-applying the position masks keeps their
            # contribution empty, exactly as in the dense scan.
            closing_mask = bitpack.start_masks(
                np.maximum(pos, lo), base_col, num_words, bases
            )
            closing_mask &= bitpack.tail_mask(window_end, base_col, num_words, bases)
            closing = bitpack.row_counts(recv & closing_mask)
        else:
            closing = bitpack.row_counts(recv)
        received_counts += closing
        protocol.scan_bulk_received(everyone, closing)
        np.maximum(pos, window_end, out=pos)
        lo = window_end

    return ChunkResult(
        received=received_counts,
        event_cols=_concat(ev_cols),
        event_receivers=_concat(ev_rec),
        event_old_levels=_concat(ev_old),
        event_new_levels=_concat(ev_new),
    )
