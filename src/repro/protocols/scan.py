"""Chunked per-receiver event scan — the core of the batched protocol engine.

The Section-4 protocols are *receiver-local*: given the loss outcomes of
every scheduled packet, one receiver's subscription level and join counters
evolve independently of every other receiver's (the only cross-receiver
coupling — which layers the shared link carries — affects measurement, not
protocol state, because a packet some receiver is subscribed to is always
carried).  The scan below exploits that:

* loss outcomes are pre-sampled for a whole *chunk* of time units from the
  run's counter-based streams (``RNG_SCHEME_VERSION >= 4``), which is
  possible because the loss draws cover every scheduled packet regardless
  of simulation state;
* each receiver's trajectory through the chunk is a sparse sequence of
  *events* (congestion-driven leaves/counter resets and joins) separated by
  stretches of plain packet reception;
* every iteration of the scan finds, for all still-active receivers at
  once, the first packet at which each receiver's state changes — computed
  with array operations under the receiver's current (frozen) state, which
  is exact precisely because nothing changes before the first event;
* the stretch before each event is accounted in bulk (received-packet
  counts, join-counter increments), the event itself is applied, and the
  scan continues from the next packet.

Matrices are laid out **receiver-major** — one row per receiver, one column
per packet — so the per-receiver reductions (first event, bulk counts) run
along contiguous memory.  Columns are restricted twice over: to packets of
layers no higher than the highest subscription among active receivers, and
to a bounded window ahead of the scan front, so per-iteration work tracks
the event spacing rather than the chunk size.

The high-correlated-loss regime (Figure 8(b)) additionally rides a **fused
event drain**: a synchronized (shared-loss) event congests many receivers
at the same column, and the scan drains all of them in a single iteration
— one vectorised pass applies every receiver's bulk reception credit and
congestion reaction at once — after which only the window *segment past
the drained column* is recomputed, with first-congestion candidates cached
for the untouched rows.  Per-event cost therefore tracks the segment
between synchronized events instead of the full receiver x window matrix.

**Bit-packed variant (the default engine).**  ``engine="bitpacked"`` runs
the same event scan on ``uint64``-packed matrices
(:mod:`repro.protocols.bitpack`): the engine scatters its sparse loss
positions straight into packed ``receivable`` words, the per-window
``recv``/``cong`` matrices are packed bit fields, and every boolean
reduction becomes a masked popcount — first-congestion candidates via
lowest-set-bit isolation, bulk reception credits via prefix popcounts,
segment refreshes via per-row range masks.  One word carries 64 packet
columns, so the window matrices shrink 8x and the scan affords windows an
order of magnitude wider (fewer Python-level iterations) at the same
memory traffic.  :func:`scan_chunk_bitpacked` mirrors :func:`scan_chunk`
decision for decision; both are bit-for-bit identical to the reference
loop for any window or chunk size.

For protocols that implement the exact in-chain join locator
(:meth:`~repro.protocols.base.LayeredProtocol.scan_chain_join_packed`,
declared with ``supports_chain_join`` — all three Section-4 protocols),
the packed scan upgrades the fused drain into a **multi-event chain
drain**: after one generation pass establishes a window, the chain
consumes *every* remaining event of the window — correlated-loss
congestions *and* the joins between them — without re-entering the
generation machinery.  Each chained row's next event is the earlier of
its cached first-congestion candidate and its exactly-located join
(rank-select ``kth_set`` for counter/countdown joins, sync-point prefix
popcounts for coordinated joins); bulk reception credits come from prefix
popcounts up to the event column, and only the row's packed suffix past
the event is rebuilt.  A window therefore costs one generation pass plus
one vectorised chain step per synchronized event batch, which is what
makes the dense correlated-loss regime of Figure 8(b) byte-bound instead
of event-bound.

The scan produces results bit-for-bit identical to the per-packet reference
engine for any window size or chunk size;
``tests/simulator/test_engine_equivalence.py`` holds the conformance
matrix and ``tests/simulator/test_engine_fuzz.py`` fuzzes generated
scenarios across all three engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from . import bitpack
from .kernel import (
    ChunkResult,
    DENSE_OPS,
    PACKED_OPS,
    BackendOps,
    ScanKernel,
)

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from .base import LayeredProtocol

__all__ = ["UnitChunk", "ChunkResult", "scan_chunk", "scan_chunk_bitpacked"]

_WORD_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE64 = np.uint64(1)


@dataclass
class UnitChunk:
    """Pre-sampled inputs for a contiguous run of sender time units.

    Attributes
    ----------
    start_unit / num_units / packets_per_unit:
        The chunk covers time units ``start_unit .. start_unit+num_units``;
        packet column ``c`` belongs to unit ``start_unit + c //
        packets_per_unit``.
    num_layers:
        Top subscription level of the layer scheme.
    layers:
        Layer of every packet column (the unit pattern, tiled).
    shared_lost / independent_lost:
        Dense pre-sampled loss outcomes: ``(n,)`` for the shared link and
        receiver-major ``(num_receivers, n)`` for the fan-out links.  When
        several runs are stacked into one chunk, ``shared_lost`` holds one
        row per run.  Only materialised for protocols that declare
        ``needs_dense_losses`` (the active-node group drain); the generic
        scan reads ``receivable`` alone, which the engine scatters from
        sparse loss positions.
    receivable:
        Pre-combined reception outcome (``~shared & ~independent`` per
        receiver row); computed from the dense loss arrays when absent.
    cols_for_level:
        ``cols_for_level[l]`` lists the packet columns with ``layer <= l``
        — the packets a level-``l`` receiver can observe.
    observed_before:
        ``observed_before[l, c]`` counts the packet columns before ``c``
        with ``layer <= l`` (shape ``(num_layers + 1, n + 1)``); an upper
        bound on what a level-``l`` receiver can receive, used to prune
        unreachable join opportunities.
    sync_cols / sync_ok:
        Columns of unit-initial packets carrying sender sync marks, and a
        ``(len(sync_cols), num_levels+2)`` table with ``sync_ok[i, l]``
        true when level ``l`` may join at that sync point.
    times:
        Absolute transmission time per column; only materialised when the
        engine tracks leave-latency advertisements.
    scan_window:
        Maximum observed columns one scan iteration examines (0 =
        unbounded).  Purely a performance knob — results are identical for
        any value.
    receivable_packed / layer_masks_packed:
        The bit-packed engine's inputs (``None`` elsewhere): ``uint64``
        words packing ``receivable`` column-wise (column ``c`` at word
        ``c // 64``, bit ``c % 64``; see :mod:`repro.protocols.bitpack`)
        and one packed ``layer <= level`` column mask per subscription
        level (``(num_layers + 1, ceil(n / 64))``).  A chunk carries
        either the packed or the dense representation, never both;
        :meth:`~repro.protocols.base.LayeredProtocol.step_chunk`
        dispatches on which one is present.
    ops:
        The :class:`~repro.protocols.kernel.BackendOps` the scan lowers
        its reductions with — set by the engine to match the chunk's
        representation (``None`` falls back to the representation's
        default NumPy ops).
    """

    start_unit: int
    num_units: int
    packets_per_unit: int
    num_layers: int
    layers: np.ndarray
    shared_lost: Optional[np.ndarray]
    independent_lost: Optional[np.ndarray]
    cols_for_level: Sequence[np.ndarray]
    observed_before: np.ndarray
    sync_cols: np.ndarray
    sync_ok: np.ndarray
    times: Optional[np.ndarray] = None
    scan_window: int = 0
    receivable: Optional[np.ndarray] = None
    receivable_packed: Optional[np.ndarray] = None
    layer_masks_packed: Optional[np.ndarray] = None
    ops: Optional[BackendOps] = None

    @property
    def num_packets(self) -> int:
        return int(self.layers.size)


def scan_chunk(
    protocol: "LayeredProtocol",
    chunk: UnitChunk,
    levels: np.ndarray,
    ops: Optional[BackendOps] = None,
) -> ChunkResult:
    """Advance ``levels`` (in place) through one chunk; see module docstring.

    The protocol participates through the hooks
    :meth:`~repro.protocols.base.LayeredProtocol.scan_first_join` and
    :meth:`~repro.protocols.base.LayeredProtocol.scan_boundary` (join
    detection under frozen state) plus the bookkeeping mirrors
    :meth:`~repro.protocols.base.LayeredProtocol.scan_bulk_received`,
    :meth:`~repro.protocols.base.LayeredProtocol.scan_congested`,
    :meth:`~repro.protocols.base.LayeredProtocol.scan_left` and
    :meth:`~repro.protocols.base.LayeredProtocol.scan_joined`.
    """
    num_receivers = levels.size
    if ops is None:
        ops = chunk.ops if chunk.ops is not None else DENSE_OPS

    # Receiver-local reception outcome if subscribed: neither link lost it.
    receivable = chunk.receivable
    if receivable is None:
        receivable = ~chunk.independent_lost & ~chunk.shared_lost[None, :]

    kernel = ScanKernel(
        protocol, levels, num_receivers,
        col_offset=chunk.start_unit * chunk.packets_per_unit,
    )

    n = chunk.num_packets
    window = chunk.scan_window or n
    # Narrow dtypes keep the broadcast comparisons below memory-light.
    layers = chunk.layers.astype(np.int16, copy=False)

    everyone = np.arange(num_receivers)
    pos = np.zeros(num_receivers, dtype=np.int32)
    lo = 0
    while lo < n:
        # ---- establish one window of observable columns -----------------
        top = int(levels.max())
        cols_all = chunk.cols_for_level[top]
        first = np.searchsorted(cols_all, lo) if lo else 0
        if first >= cols_all.size:
            break
        capped = cols_all.size - first > window
        cols = cols_all[first:first + window]
        # The window ends just before the next column anyone could observe
        # (skipping unobservable higher-layer packets costs nothing).
        window_end = int(cols_all[first + window]) if capped else n
        boundary = protocol.scan_boundary(chunk, lo, everyone, levels, pos)
        if boundary < window_end:
            cols = cols[:np.searchsorted(cols, boundary)]
            window_end = boundary
            if cols.size == 0:
                # Nothing observable before the boundary; hop across.
                np.maximum(pos, window_end, out=pos)
                lo = window_end
                continue

        num_cols = cols.size
        if int(cols[-1]) - int(cols[0]) + 1 == num_cols:
            # Contiguous column range (every layer observable): slice views
            # instead of fancy-index copies.
            span = slice(int(cols[0]), int(cols[-1]) + 1)
            layer_row = layers[span][None, :]
            ok = receivable[:, span]
        else:
            layer_row = layers[cols][None, :]
            ok = receivable[:, cols]
        sub = layer_row <= levels.astype(np.int16)[:, None]
        recv = sub & ok
        cong = sub ^ recv  # subscribed and not received = congested
        if int(pos.max()) > lo:
            # Receivers that processed an event past a truncated window
            # must not see the columns they already consumed.
            valid = cols[None, :] >= pos[:, None]
            recv &= valid
            cong &= valid

        has_join = np.zeros(num_receivers, dtype=bool)
        e_join = np.zeros(num_receivers, dtype=np.int64)
        join = protocol.scan_first_join(chunk, cols, everyone, levels, recv, pos, fresh=True)
        if join is not None:
            has_join, e_join = join

        # ---- drain the window's events, touching only changed rows ------
        # First-congestion candidates are cached and refreshed only for the
        # rows each iteration changed, so per-iteration work tracks the hit
        # set instead of the full receiver x window matrix.
        iota = np.arange(num_cols, dtype=np.int32)
        truncate_at = -1
        has_cong, e_cong = ops.first_true(cong)
        while True:
            has_event = has_cong | has_join
            if not has_event.any():
                break
            was_cong = kernel.first_event(has_cong, e_cong, has_join, e_join)
            e_slice = np.where(was_cong, e_cong, e_join)
            hit = np.nonzero(has_event)[0]
            e_hit = e_slice[hit]
            event_cols = cols[e_hit]
            # Receptions strictly before each event column (rows are
            # already masked below each receiver's position); the
            # join-triggering packet itself is credited by the kernel.
            bulk = ops.counts_before(recv[hit], iota, e_hit)
            kernel.credit(hit, bulk)
            hit_cong = was_cong[hit]
            kernel.congest(hit[hit_cong], event_cols[hit_cong])
            # A join whose receiver outgrew the window's layer slice closes
            # the window: packets above ``top`` are missing from these
            # columns, so its scan must resume in a wider window — *before*
            # the first such join, because the joiner itself has consumed
            # its column while receivers whose first event came earlier
            # still need their look at it.
            truncate_at = kernel.join(
                hit[~hit_cong], event_cols[~hit_cong], top, credit_join=True
            )
            pos[hit] = event_cols + 1
            if truncate_at >= 0:
                # Close the window at the earliest hit position: receivers
                # whose event came earlier may still have unevaluated
                # events between there and the truncating join, so only
                # event-free receivers may be bulk-advanced past it.  The
                # next (wider) window re-examines everything beyond.
                window_end = int(pos[hit].min())
                break
            # ---- multi-event chain drain ----------------------------
            # Congested rows keep draining forward: with levels only ever
            # stepping down along a run of congestion events, each lower
            # level's congestion columns follow from the raw receivable
            # matrix by masking (no refresh needed), and the protocol
            # certifies join-free gaps from the gap's reception count alone
            # (its counters are freshly reset/re-armed after every consumed
            # event).  A window's worth of correlated-loss columns thus
            # drains in one pass — one segment refresh and one join-hook
            # call per *chain* instead of per event.
            chain = hit[hit_cong]
            while chain.size:
                sub_c = layer_row <= levels[chain].astype(np.int16)[:, None]
                alive = cols[None, :] >= pos[chain][:, None]
                ok_c = ok[chain]
                cand = sub_c & ~ok_c
                cand &= alive
                has_next, idx = ops.first_true(cand)
                if not has_next.any():
                    break
                chain = chain[has_next]
                idx = idx[has_next]
                nxt = cols[idx].astype(np.int64)
                gap = sub_c[has_next] & ok_c[has_next]
                gap &= alive[has_next]
                gap &= iota[None, :] < idx[:, None]
                n_gap = ops.row_counts(gap)
                may_join = protocol.scan_chain_gap(
                    chunk, chain, levels[chain], n_gap,
                    pos[chain].astype(np.int64) - 1, nxt,
                )
                if may_join is None:
                    break
                keep = ~may_join
                chain = chain[keep]
                if chain.size == 0:
                    break
                nxt = nxt[keep]
                kernel.credit(chain, n_gap[keep])
                kernel.congest(chain, nxt)
                pos[chain] = nxt + 1
            # ---- fused segment refresh ------------------------------
            # Every hit row's scan resumes at or beyond the earliest
            # drained column, so only the window segment past it is
            # recomputed.  Synchronized (shared-loss) events — where most
            # rows drain the same column at once — therefore cost one
            # short vectorised segment pass instead of a full-window
            # recomputation per event generation.
            resume = int(np.searchsorted(cols, int(pos[hit].min())))
            recv[hit, :resume] = False
            cong[hit, :resume] = False
            if resume == num_cols:
                # The drained column closed the window for these rows.
                has_cong[hit] = False
                has_join[hit] = False
                continue
            sub_hit = layer_row[:, resume:] <= levels[hit].astype(np.int16)[:, None]
            recv_hit = sub_hit & ok[hit, resume:]
            cong_hit = sub_hit ^ recv_hit
            valid_hit = cols[None, resume:] >= pos[hit][:, None]
            recv_hit &= valid_hit
            cong_hit &= valid_hit
            recv[hit, resume:] = recv_hit
            cong[hit, resume:] = cong_hit
            has_cong[hit], segment_cong = ops.first_true(cong_hit)
            e_cong[hit] = resume + segment_cong
            join = protocol.scan_first_join(
                chunk, cols[resume:], hit, levels[hit], recv_hit, pos[hit], fresh=False
            )
            if join is None:
                has_join[hit] = False
            else:
                has_join[hit], segment_join = join
                e_join[hit] = resume + segment_join

        # ---- close the window: bulk everyone to its end ------------------
        if truncate_at >= 0:
            # Hit receivers' rows are stale (the loop broke before their
            # refresh); their position masks keep their contribution empty,
            # which is exact because the window closes at the earliest hit.
            closing = ops.range_counts(recv, cols, pos, window_end)
        else:
            closing = ops.row_counts(recv)
        kernel.credit(everyone, closing)
        np.maximum(pos, window_end, out=pos)
        lo = window_end

    return kernel.result()


def scan_chunk_bitpacked(
    protocol: "LayeredProtocol",
    chunk: UnitChunk,
    levels: np.ndarray,
    ops: Optional[BackendOps] = None,
) -> ChunkResult:
    """Advance ``levels`` through one chunk on bit-packed matrices.

    Same event scan as :func:`scan_chunk`, decision for decision — window
    establishment, first-event selection, fused drain, segment refresh and
    window closing all mirror the dense code — but ``recv``/``cong`` are
    ``uint64`` words (64 packet columns each) and every reduction is a
    masked popcount (:mod:`repro.protocols.bitpack`).  Protocols
    participate through :meth:`~repro.protocols.base.LayeredProtocol.
    scan_first_join_packed` (a :class:`~repro.protocols.bitpack.
    PackedWindow` instead of a dense reception matrix) plus the same
    bookkeeping hooks; event columns are absolute chunk columns
    throughout, which orders events exactly as the dense scan's
    window-relative indices do.
    """
    num_receivers = levels.size
    okp = chunk.receivable_packed
    level_masks = chunk.layer_masks_packed
    assert okp is not None and level_masks is not None
    if ops is None:
        ops = chunk.ops if chunk.ops is not None else PACKED_OPS

    kernel = ScanKernel(
        protocol, levels, num_receivers,
        col_offset=chunk.start_unit * chunk.packets_per_unit,
    )

    n = chunk.num_packets
    window = chunk.scan_window or n
    everyone = np.arange(num_receivers)
    pos = np.zeros(num_receivers, dtype=np.int64)
    lo = 0
    while lo < n:
        # ---- establish one window of observable columns -----------------
        top = int(levels.max())
        cols_all = chunk.cols_for_level[top]
        first = cols_all.searchsorted(lo) if lo else 0
        if first >= cols_all.size:
            break
        capped = cols_all.size - first > window
        window_end = int(cols_all[first + window]) if capped else n
        # Bound the window in *scheduled* columns as well: at low
        # subscription levels the observable columns thin out, and a
        # window of ``window`` observable columns would otherwise span an
        # arbitrarily wide word range (every per-generation mask build
        # pays for those words, observable or not).
        window_end = min(window_end, lo + window)
        boundary = protocol.scan_boundary(chunk, lo, everyone, levels, pos)
        if boundary < window_end:
            window_end = boundary
        hi = int(cols_all.searchsorted(window_end))
        if hi == first:
            # Nothing observable before the window's end; hop across.
            np.maximum(pos, window_end, out=pos)
            lo = window_end
            continue
        num_obs = hi - first
        last_obs = int(cols_all[hi - 1])

        w_lo = lo >> 6
        w_hi = (window_end + 63) >> 6
        base_col = w_lo << 6
        num_words = w_hi - w_lo
        bases = ops.word_base(base_col, num_words)
        ok = okp[:, w_lo:w_hi]
        masks_here = level_masks[:, w_lo:w_hi]
        sub = masks_here[levels]
        # Only the window's leading and trailing words are partial (base_col
        # is ``lo`` rounded down to a word), so the start/stop masking is
        # two scalar word ANDs — unless a truncated predecessor window left
        # some positions beyond ``lo``, which needs the per-row masks.
        tail = window_end - base_col - ((num_words - 1) << 6)
        edge_word = (
            (_ONE64 << np.uint64(tail)) - _ONE64 if tail < 64 else _WORD_ONES
        )
        if int(pos.max()) <= lo:
            head = lo - base_col
            if head:
                sub[:, 0] &= _WORD_ONES << np.uint64(head)
        else:
            sub &= ops.start_masks(np.maximum(pos, lo), base_col, num_words, bases)
        sub[:, -1] &= edge_word
        recv = sub & ok
        cong = sub
        cong ^= recv

        # ``cong`` is consumed once by the candidate cache here; after
        # that only the cached (has_cong, e_cong) pair and the per-refresh
        # recomputation are ever read, so the drain never stores congestion
        # rows back.  The cached candidates also feed the join hook, which
        # may skip rank-selecting joins the scan would discard (a join at
        # or past a row's congestion candidate is never consumed).
        has_cong, e_cong = ops.first_set(cong, base_col)
        view = bitpack.PackedWindow(recv, base_col, lo, window_end, num_obs, last_obs)
        join = protocol.scan_first_join_packed(
            chunk, view, everyone, levels, pos, fresh=True, cong=(has_cong, e_cong)
        )
        if join is None:
            has_join = np.zeros(num_receivers, dtype=bool)
            e_join = np.zeros(num_receivers, dtype=np.int64)
        else:
            has_join, e_join = join

        # ---- drain the window's events, touching only changed rows ------
        truncate_at = -1
        while True:
            hit = (has_cong | has_join).nonzero()[0]
            if hit.size == 0:
                break
            was_cong = kernel.first_event(has_cong, e_cong, has_join, e_join)
            e_col = np.where(was_cong, e_cong, e_join)
            event_cols = e_col[hit]
            hit_cong = was_cong[hit]
            join_rows = ~hit_cong
            # One mask build serves both sides of the event: its complement
            # selects the consumed bits (receptions up to and including the
            # event column), the mask itself the refresh range beyond it.
            ahead = ops.start_masks(event_cols + 1, base_col, num_words, bases)
            credited = ops.gather_andnot_counts(recv, hit, ahead)
            # ``credited`` includes the join-triggering packet itself (a
            # received bit at the event column); congestion columns were
            # not received, so their rows credit strictly-before bits only.
            jidx = hit[join_rows]
            if jidx.size:
                bulk = credited.copy()
                bulk[join_rows] -= 1
            else:
                bulk = credited
            kernel.credit(hit, credited, bulk)
            kernel.congest(hit[hit_cong], event_cols[hit_cong])
            # A receiver whose join outgrew the window's layer slice closes
            # the window before the first such join (see scan_chunk).
            truncate_at = kernel.join(jidx, event_cols[join_rows], top)
            pos[hit] = event_cols + 1
            if truncate_at >= 0:
                window_end = int(pos[hit].min())
                break
            # ---- fused segment refresh ------------------------------
            # Hit rows are rebuilt under their new levels and positions —
            # and only over the words at or past the earliest consumed
            # column (everything before it is consumed for every hit row),
            # reusing the consumed-bit mask built above.  Untouched rows
            # keep their cached first-congestion candidates.
            seg_lo = int(pos[hit].min())
            if seg_lo > last_obs:
                # The drained column closed the window for these rows:
                # every observable column is behind their positions, so
                # their consumed bits must vanish before the window-close
                # bulk (the dense scan zeroes the same prefix).
                recv[hit] = 0
                has_cong[hit] = False
                has_join[hit] = False
                continue
            w0 = (seg_lo - base_col) >> 6
            base_w0 = base_col + (w0 << 6)
            bases_s = bases[w0:]
            sub_hit = masks_here[levels[hit], w0:]
            sub_hit &= ahead[:, w0:]
            sub_hit[:, -1] &= edge_word
            ok_hit = ok[hit, w0:]
            recv_hit = sub_hit & ok_hit
            cong_hit = sub_hit
            cong_hit ^= recv_hit
            has_c, e_c = ops.first_set(cong_hit, base_w0)
            if protocol.supports_chain_join:
                # ---- exact multi-event chain drain ------------------
                # Every hit row's join-progress state was freshly reset or
                # re-armed by the event it just consumed, so the protocol
                # can locate each row's next event *exactly* from its gap
                # alone: the next congestion candidate is the refreshed
                # first-set column, and scan_chain_join_packed pinpoints
                # any earlier join inside the gap.  The chain therefore
                # consumes joins and congestion events alike until every
                # row runs out of events, draining the whole window in one
                # pass — one join-hook call per chain step over the still-
                # active rows, no per-generation segment refresh at all.
                chain_l = np.arange(hit.size)
                num_words_s = num_words - w0
                while chain_l.size:
                    rows_g = hit[chain_l]
                    # Every chained row's bits below its position are
                    # cleared, so words wholly below the earliest position
                    # are zero for the whole chain — slide the word base
                    # past them and run the step on the shrinking suffix
                    # (synchronized losses advance all positions together,
                    # so the suffix collapses fast).
                    ws = (int(pos[rows_g].min()) - base_w0) >> 6
                    if ws >= num_words_s:
                        ws = num_words_s - 1
                    elif ws < 0:
                        ws = 0
                    base_ws = base_w0 + (ws << 6)
                    words_g = recv_hit[:, ws:][chain_l]
                    hc = has_c[chain_l]
                    bound = np.where(hc, e_c[chain_l], window_end)
                    # Bits below each row's position are already cleared, so
                    # the gap count is one prefix popcount at the bound.
                    n_gap = ops.prefix_counts(words_g, base_ws, bound)
                    has_j, j_col, j_bulk = protocol.scan_chain_join_packed(
                        chunk, words_g, base_ws, rows_g,
                        levels[rows_g], n_gap, pos[rows_g] - 1, bound,
                    )
                    # Rows with neither a join in the gap nor a congestion
                    # candidate are fully drained and leave the chain.
                    sel = (has_j | hc).nonzero()[0]
                    if sel.size == 0:
                        break
                    if sel.size < chain_l.size:
                        chain_l = chain_l[sel]
                        rows_g = hit[chain_l]
                        bound = bound[sel]
                        n_gap = n_gap[sel]
                        has_j = has_j[sel]
                        j_col = j_col[sel]
                        j_bulk = j_bulk[sel]
                    event = np.where(has_j, j_col, bound)
                    # Joining rows' credit includes the join packet itself
                    # (a received bit at the event column); congestion
                    # columns were not received, so their rows credit the
                    # gap's strictly-before receptions only.
                    bulk_c = np.where(has_j, j_bulk, n_gap)
                    kernel.credit(rows_g, bulk_c, bulk_c - has_j)
                    kernel.congest(rows_g[~has_j], event[~has_j])
                    # A receiver whose join outgrew the window's layer slice
                    # closes the window before the first such join (see
                    # scan_chunk).
                    truncate_at = kernel.join(rows_g[has_j], event[has_j], top)
                    pos[rows_g] = event + 1
                    if truncate_at >= 0:
                        break
                    # Rebuild the consumed rows' segment state under their
                    # new level and position — suffix words only; the words
                    # below the slid base stay zero for these rows.
                    has_c[chain_l], e_c[chain_l] = ops.chain_rebuild(
                        masks_here, w0 + ws, levels[rows_g], pos[rows_g],
                        edge_word, base_ws, bases_s[ws:],
                        ok_hit[:, ws:][chain_l], recv_hit, chain_l, ws,
                    )
                if truncate_at >= 0:
                    window_end = int(pos[hit].min())
                    break
                # Every hit row is drained: write the final segment state
                # back for the window-close credit and end the event loop.
                if w0:
                    recv[hit, :w0] = 0
                    recv[hit, w0:] = recv_hit
                else:
                    recv[hit] = recv_hit
                has_cong[hit] = False
                has_join[hit] = False
                continue
            # ---- multi-event chain drain ----------------------------
            # Congestion-consumed rows keep draining forward: their next
            # congestion candidate is exactly the refreshed first-set
            # column just computed, and the protocol certifies join-free
            # gaps from the gap's reception count alone (its counters are
            # freshly reset/re-armed after every consumed event).  A
            # window's worth of correlated-loss columns thus drains in one
            # pass — only the rows a chain actually advances are rebuilt,
            # and the join hook runs once per *chain* instead of per event.
            chain_l = (hit_cong & has_c).nonzero()[0]
            while chain_l.size:
                rows_g = hit[chain_l]
                nxt = e_c[chain_l]
                n_gap = ops.counts_between(
                    recv_hit[chain_l], base_w0, pos[rows_g], nxt, bases_s
                )
                may_join = protocol.scan_chain_gap(
                    chunk, rows_g, levels[rows_g], n_gap, pos[rows_g] - 1, nxt
                )
                if may_join is None:
                    break
                keep = ~may_join
                chain_l = chain_l[keep]
                if chain_l.size == 0:
                    break
                rows_g = hit[chain_l]
                nxt = nxt[keep]
                kernel.credit(rows_g, n_gap[keep])
                kernel.congest(rows_g, nxt)
                pos[rows_g] = nxt + 1
                # Rebuild just the chained rows' segment state under their
                # new level and position, keeping the candidate cache hot.
                has_c[chain_l], e_c[chain_l] = ops.chain_rebuild(
                    masks_here, w0, levels[rows_g], pos[rows_g], edge_word,
                    base_w0, bases_s, ok_hit[chain_l], recv_hit, chain_l, 0,
                )
                chain_l = chain_l[has_c[chain_l]]
            # ---- write back + one join-hook call per generation -----
            if w0:
                recv[hit, :w0] = 0
                recv[hit, w0:] = recv_hit
            else:
                recv[hit] = recv_hit
            has_cong[hit] = has_c
            e_cong[hit] = e_c
            seg_obs = int(
                chunk.observed_before[top, window_end]
                - chunk.observed_before[top, seg_lo]
            )
            seg_view = bitpack.PackedWindow(
                recv_hit, base_w0, seg_lo, window_end, seg_obs, last_obs
            )
            join = protocol.scan_first_join_packed(
                chunk, seg_view, hit, levels[hit], pos[hit], fresh=False,
                cong=(has_c, e_c),
            )
            if join is None:
                has_join[hit] = False
            else:
                has_join[hit], e_join[hit] = join

        # ---- close the window: bulk everyone to its end ------------------
        if truncate_at >= 0:
            # Hit receivers' rows are stale (the loop broke before their
            # refresh); re-applying the position masks keeps their
            # contribution empty, exactly as in the dense scan.
            closing_mask = ops.start_masks(
                np.maximum(pos, lo), base_col, num_words, bases
            )
            closing_mask &= ops.tail_mask(window_end, base_col, num_words, bases)
            closing = ops.row_counts(recv & closing_mask)
        else:
            closing = ops.row_counts(recv)
        kernel.credit(everyone, closing)
        np.maximum(pos, window_end, out=pos)
        lo = window_end

    return kernel.result()
