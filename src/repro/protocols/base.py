"""Common machinery for the Section-4 layered congestion-control protocols.

All three protocols share the same reaction to congestion and the same
parameterisation, taken from the paper (which in turn follows Vicisano,
Crowcroft & Rizzo's RLC):

* a receiver joined up to layer ``i`` receives the aggregate rate
  ``2^(i-1)`` (the exponential layer scheme);
* on a congestion event (a lost or congestion-marked packet) the receiver
  leaves its highest layer, unless it is only joined to layer 1;
* the expected number of packets received between a join/leave event and the
  next join from level ``i`` to ``i + 1`` is ``2^(2(i-1))``.

The protocols differ only in *when* the join actually happens — randomly per
packet (Uncoordinated), after a fixed packet count (Deterministic), or at
sender-stamped sync points (Coordinated).  Protocol objects operate on
vectorised per-receiver state (numpy arrays) so the packet-level simulator
can update an entire session per packet.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from ..errors import ProtocolError
from ..layering.layers import LayerScheme
from .scan import ChunkResult, UnitChunk, scan_chunk, scan_chunk_bitpacked
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet

__all__ = ["LayeredProtocol", "join_threshold_packets"]


def join_threshold_packets(level: int) -> float:
    """Expected packets between a join/leave event and the next join: ``2^(2(i-1))``."""
    if level < 1:
        raise ProtocolError(f"subscription level must be >= 1, got {level}")
    return float(2 ** (2 * (level - 1)))


# join_threshold's per-level values, precomputed: the scan's join hooks
# evaluate the threshold on every window/segment call, and a table gather
# beats the float exponentiation there.  4^30 packets is far beyond any
# session length, so the table covers every realistic layer scheme; larger
# levels fall back to the direct formula.
_JOIN_THRESHOLDS = 2.0 ** (2.0 * (np.arange(32, dtype=np.float64) - 1.0))


class LayeredProtocol(abc.ABC):
    """A receiver-driven layered congestion-control protocol.

    Lifecycle: the simulation engine calls :meth:`reset` once per run, then
    for every packet it delivers the reception outcome through
    :meth:`on_congestion` (receivers that observed a loss) and
    :meth:`on_packet_received` (receivers that got the packet), the latter
    returning the boolean mask of receivers that decide to join an
    additional layer.  The engine applies the leave/join level changes itself
    and reports completed joins back through :meth:`on_join`.
    """

    #: Human-readable protocol name (used in experiment tables).
    name: str = "abstract"

    #: Whether the protocol implements the time-unit-batched engine path
    #: (:meth:`step_chunk` and the ``scan_*`` hooks).  The simulation engine
    #: falls back to the per-packet reference loop when this is false, so
    #: custom protocol subclasses keep working unmodified.
    supports_batched_units: bool = False

    #: Whether the protocol's state is strictly per-receiver, allowing the
    #: engine to stack independently-seeded runs as receiver blocks of one
    #: batched session (see ``LayeredSessionSimulator.run_many``).  Group
    #: protocols with session-global state (the active-node extension)
    #: leave this false.
    supports_stacked_runs: bool = False

    #: Whether the protocol's batched path reads the dense per-packet loss
    #: matrices (``UnitChunk.shared_lost`` / ``independent_lost``).  The
    #: generic event scan only needs the combined ``receivable`` matrix,
    #: which the engine builds by scattering sparse loss positions;
    #: protocols that inspect raw loss outcomes (the active-node group
    #: drain) set this true and get the dense arrays materialised.
    needs_dense_losses: bool = False

    #: Whether the protocol implements the bit-packed scan path
    #: (:meth:`scan_first_join_packed`).  ``engine="bitpacked"`` only packs
    #: chunks for protocols that declare this; everything else runs the
    #: dense batched scan (or the reference loop) under that engine
    #: setting, with identical results.
    supports_bitpacked: bool = False

    #: Whether the protocol implements the exact in-chain join locator
    #: (:meth:`scan_chain_join_packed`).  When true, the bit-packed scan's
    #: multi-event chain drain consumes *joins* as well as congestion
    #: events, so a whole window of events drains in one chain pass with a
    #: single join-hook call per window; when false, the chain breaks on
    #: any plausible join (:meth:`scan_chain_gap`) and the per-generation
    #: segment hook re-evaluates exactly.
    supports_chain_join: bool = False

    def stacking_key(self) -> tuple:
        """Identity for run stacking: two protocol instances may drive
        blocks of the same batched session only when their keys match.
        Subclasses with behavioural parameters extend the tuple."""
        return (type(self),)

    def __init__(self) -> None:
        self.num_receivers = 0
        self.scheme: Optional[LayerScheme] = None
        self._rng: Optional[np.random.Generator] = None
        self._received_since_event = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(
        self,
        num_receivers: int,
        scheme: LayerScheme,
        rng: np.random.Generator,
    ) -> None:
        """Prepare per-receiver state for a fresh simulation run."""
        if num_receivers < 1:
            raise ProtocolError(f"need at least one receiver, got {num_receivers}")
        self.num_receivers = num_receivers
        self.scheme = scheme
        self._rng = rng
        self._reset_state()

    def _reset_state(self) -> None:
        """Hook for subclasses to (re)initialise their per-receiver arrays.

        The base allocates the shared join-progress counter
        (``received_since_event``) that the default hook implementations
        below maintain; overriding subclasses must call
        ``super()._reset_state()``.
        """
        self._received_since_event = np.zeros(self.num_receivers, dtype=np.int64)

    def bind_run_streams(self, streams: Sequence, receivers_per_run: int) -> None:
        """Attach the runs' counter-based random streams (RNG scheme 4).

        Called by the simulation engine after :meth:`reset`, once per run
        (or once with every stacked run's streams, in receiver-block
        order).  ``streams`` holds one
        :class:`repro.simulator.rng.RunStreams` per run.  The default does
        nothing — only protocols that consume per-receiver randomness (the
        Uncoordinated protocol's join draws) materialise streams from it;
        protocols used outside an engine run simply never receive the call
        and fall back to drawing from the generator passed to
        :meth:`reset`.
        """

    def _require_ready(self) -> np.random.Generator:
        if self._rng is None or self.scheme is None:
            raise ProtocolError(
                f"protocol {self.name!r} used before reset(); call reset() first"
            )
        return self._rng

    # ------------------------------------------------------------------
    # per-unit randomness
    # ------------------------------------------------------------------
    def begin_unit(
        self,
        rng: np.random.Generator,
        num_packets: int,
        num_receivers: Optional[int] = None,
    ) -> None:
        """Pre-sample per-unit protocol randomness (reference engine only).

        Called by the per-packet reference loop once per unit with the
        run's dedicated protocol stream, immediately after the unit's loss
        outcomes are sampled.  The batched engine does **not** call this
        hook (since RNG scheme 4 it samples no per-unit protocol
        randomness): a subclass that pre-samples draws here must leave
        ``supports_batched_units`` false so every engine setting routes it
        to the reference loop; batched protocols take their randomness
        from the counter streams delivered by :meth:`bind_run_streams`.
        The default draws nothing, as do all built-in protocols.
        """

    def begin_chunk(
        self,
        num_runs: int = 1,
        num_units: int = 1,
        packets_per_unit: int = 0,
    ) -> None:
        """Prepare per-chunk scratch state (batched engine only).

        Called by the batched engine before each chunk's loss sampling;
        protocols with per-chunk scratch buffers size them here.
        ``num_runs`` tells them how many stacked run blocks the chunk's
        receiver rows are laid out in.
        """

    # ------------------------------------------------------------------
    # batched (time-unit chunk) path
    # ------------------------------------------------------------------
    def step_chunk(self, chunk: UnitChunk, levels: np.ndarray) -> ChunkResult:
        """Advance the session through one chunk of time units.

        ``levels`` is updated in place.  The default implementation runs the
        generic per-receiver event scan (:func:`repro.protocols.scan.scan_chunk`)
        driven by the ``scan_*`` hooks below; protocols whose receivers are
        *not* independent (the active-node group protocol) override it.
        A chunk assembled with packed matrices (``engine="bitpacked"``)
        carries ``receivable_packed`` instead of ``receivable`` and runs
        the popcount scan, bit-for-bit identical to the dense one.
        """
        if chunk.receivable_packed is not None:
            return scan_chunk_bitpacked(self, chunk, levels)
        return scan_chunk(self, chunk, levels)

    def scan_boundary(
        self,
        chunk: UnitChunk,
        lo: int,
        act: np.ndarray,
        levels_act: np.ndarray,
        pos: np.ndarray,
    ) -> int:
        """Column (exclusive) the current scan window must not cross.

        Protocols whose joins happen at designated packets (the Coordinated
        sync points) bound the window at the next packet where a join is
        plausible, so :meth:`scan_first_join` only ever has to evaluate the
        window's final column.  The default imposes no bound.
        """
        return chunk.num_packets

    def scan_first_join(
        self,
        chunk: UnitChunk,
        cols: np.ndarray,
        act: np.ndarray,
        levels_act: np.ndarray,
        received: np.ndarray,
        pos: np.ndarray,
        fresh: bool = True,
    ):
        """First join-triggering packet per receiver under frozen state.

        ``cols`` are the packet columns in view, ``act`` the active
        receivers, ``levels_act`` their current levels and ``received`` the
        receiver-major ``(len(act), len(cols))`` reception matrix (already
        masked to each receiver's unconsumed columns).  Return ``None``
        when no join is possible, else ``(has_join, index)`` arrays over
        ``act`` with the first candidate's position within ``cols``.  Only
        the first event per receiver is acted upon and later candidates are
        recomputed after every state change, so implementations may assume
        state is frozen.
        """
        raise ProtocolError(
            f"protocol {self.name!r} declares supports_batched_units but does "
            "not implement scan_first_join()"
        )

    def scan_first_join_packed(
        self,
        chunk: UnitChunk,
        view,
        act: np.ndarray,
        levels_act: np.ndarray,
        pos: np.ndarray,
        fresh: bool = True,
        cong=None,
    ):
        """Bit-packed counterpart of :meth:`scan_first_join`.

        ``view`` is a :class:`repro.protocols.bitpack.PackedWindow` whose
        rows follow ``act``; instead of a dense reception matrix the hook
        reads masked popcounts (row counts, prefix counts, k-th set bit).
        Return ``None`` when no join is possible, else ``(has_join,
        column)`` arrays over ``act`` — columns are *absolute* chunk
        columns, unlike the dense hook's window-relative indices.  Only
        protocols declaring ``supports_bitpacked`` are ever called here.

        ``cong`` optionally carries the scan's cached first-congestion
        candidates as ``(has_cong, e_cong)`` arrays over ``act``.  A join
        at or past a row's congestion candidate is never consumed — the
        scan always takes the earlier event — so the hook may report
        ``has_join=False`` for such rows and skip locating their join
        columns (typically one cheap prefix popcount against ``e_cong``
        replaces an exact rank selection).  ``e_cong`` is undefined where
        ``has_cong`` is False.
        """
        raise ProtocolError(
            f"protocol {self.name!r} declares supports_bitpacked but does "
            "not implement scan_first_join_packed()"
        )

    def scan_chain_gap(
        self,
        chunk: UnitChunk,
        rows: np.ndarray,
        levels_rows: np.ndarray,
        gap_counts: np.ndarray,
        gap_lo: np.ndarray,
        gap_hi: np.ndarray,
    ):
        """Could a join fire strictly inside each row's event-free gap?

        The scans' multi-event chain drain consumes a row's whole run of
        congestion events in one pass instead of one event per iteration;
        before consuming the next congestion column it must certify that no
        join interrupts the gap leading up to it.  The hook is called only
        for rows whose most recently consumed column was a congestion
        event, so join-progress state is freshly reset (the Deterministic
        and Coordinated counters are zero) or freshly re-armed (the
        Uncoordinated countdown).  ``gap_counts[r]`` holds row ``r``'s
        receptions strictly inside ``(gap_lo[r], gap_hi[r])`` at its
        current level ``levels_rows[r]``; both bounds are absolute chunk
        columns and both are congestion columns for the row (not received).

        Return a boolean mask over ``rows`` that is True whenever a join
        *could* fire inside the gap — a spurious True merely breaks the
        chain (the single-event path re-evaluates exactly), so conservative
        approximations are safe; a spurious False would corrupt results.
        Return ``None`` to veto chaining entirely — the default, which
        keeps custom protocol subclasses on the single-event path.
        """
        return None

    def scan_chain_join_packed(
        self,
        chunk,
        words: np.ndarray,
        base_col: int,
        rows: np.ndarray,
        levels_rows: np.ndarray,
        gap_counts: np.ndarray,
        gap_lo: np.ndarray,
        gap_hi: np.ndarray,
    ):
        """Locate each chained row's first join inside its gap, exactly.

        The exact counterpart of :meth:`scan_chain_gap`, called by the
        bit-packed scan's chain drain for rows whose join-progress state
        was freshly reset or re-armed by their most recently consumed
        event.  ``words`` holds the rows' packed receptions (bits below
        each row's position already cleared; bits at or past ``gap_hi``
        may be set and must be ignored), ``gap_counts[r]`` the receptions
        strictly inside ``(gap_lo[r], gap_hi[r])``.  ``gap_hi`` is either
        the row's next congestion column (not received) or the exclusive
        window end when no congestion candidate remains.

        Return ``(has_join, join_col, join_bulk)``: a boolean mask over
        ``rows``, the absolute column of each joining row's first in-gap
        join, and its receptions up to and including that column
        (``join_col``/``join_bulk`` are unread where ``has_join`` is
        false).  Both directions must be exact — this hook *consumes* the
        join.  Only protocols declaring ``supports_chain_join`` are ever
        called here.
        """
        raise NotImplementedError  # pragma: no cover - guarded by the flag

    def scan_bulk_received(self, receivers: np.ndarray, counts: np.ndarray) -> None:
        """Receivers got ``counts`` packets with no join/leave in between.

        The default advances the shared join-progress counter; protocols
        whose progress state is not a reception count (the Uncoordinated
        countdown) override it.
        """
        self._received_since_event[receivers] += counts

    def scan_congested(self, receivers: np.ndarray) -> None:
        """Per-receiver congestion events (mirror of :meth:`on_congestion`).

        The default resets the shared join-progress counter — the paper's
        protocols restart their probe interval on every congestion signal,
        dropped layer or not.
        """
        self._received_since_event[receivers] = 0

    def scan_joined(self, receivers: np.ndarray, levels_receivers: np.ndarray) -> None:
        """Per-receiver completed joins (mirror of :meth:`on_join`,
        collapsed with the join packet's own reception).
        ``levels_receivers`` holds the receivers' post-join levels.
        The default resets the shared join-progress counter."""
        self._received_since_event[receivers] = 0

    def scan_left(self, receivers: np.ndarray, levels_receivers: np.ndarray) -> None:
        """Per-receiver completed leaves (mirror of :meth:`on_leave`);
        ``levels_receivers`` holds the receivers' post-leave levels.
        The counter was already reset by the congestion signal that caused
        the leave, so the default does nothing."""

    # ------------------------------------------------------------------
    # per-packet hooks
    # ------------------------------------------------------------------
    def on_congestion(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        """Receivers in the mask observed a congestion event on this packet.

        The engine lowers their subscription level; the default resets the
        shared join-progress counter (subclasses with other per-level
        randomness override this).
        """
        self._received_since_event[receivers] = 0

    def congestion_leaves(
        self,
        congested: np.ndarray,
        levels: np.ndarray,
        packet: "Packet",
    ) -> np.ndarray:
        """Which receivers actually drop a layer after this congestion event.

        The receiver-driven protocols of the paper leave exactly when they
        observe congestion, so the default returns ``congested`` unchanged.
        Coordination placed *inside* the network (the active-node extension of
        Section 5) can override this to make group-wide leave decisions.
        """
        return congested

    @abc.abstractmethod
    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: Packet,
    ) -> np.ndarray:
        """Receivers in ``received`` got the packet; return the join mask.

        ``levels`` holds the *current* subscription level of every receiver
        (before any join resulting from this packet).  The returned boolean
        array marks receivers that should join one additional layer now; the
        engine clamps joins at the top layer.
        """

    def on_join(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        """Receivers in the mask completed a join (their level already
        raised).  The default resets the shared join-progress counter."""
        self._received_since_event[receivers] = 0

    def on_leave(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        """Receivers in the mask completed a leave (their level already
        lowered).  Distinct from :meth:`on_congestion`, which fires for
        every observed congestion event whether or not a layer is dropped;
        protocols that re-arm per-level randomness (the Uncoordinated
        next-join countdown) do so here."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @property
    def received_since_event(self) -> np.ndarray:
        """Per-receiver count of packets received since the last join/leave event."""
        return self._received_since_event.copy()

    def join_probability_per_packet(self, levels: np.ndarray) -> np.ndarray:
        """Per-received-packet join probability giving the paper's expectation.

        Joining after a geometrically distributed number of packets with
        success probability ``2^(-2(i-1))`` makes the expected packet count
        between events exactly ``2^(2(i-1))``.
        """
        return 2.0 ** (-2.0 * (levels.astype(float) - 1.0))

    def join_threshold(self, levels: np.ndarray) -> np.ndarray:
        """Deterministic packet-count threshold ``2^(2(i-1))`` per receiver."""
        if levels.size and int(levels.max()) < _JOIN_THRESHOLDS.size:
            return _JOIN_THRESHOLDS[levels]
        return 2.0 ** (2.0 * (levels.astype(float) - 1.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
