"""Common machinery for the Section-4 layered congestion-control protocols.

All three protocols share the same reaction to congestion and the same
parameterisation, taken from the paper (which in turn follows Vicisano,
Crowcroft & Rizzo's RLC):

* a receiver joined up to layer ``i`` receives the aggregate rate
  ``2^(i-1)`` (the exponential layer scheme);
* on a congestion event (a lost or congestion-marked packet) the receiver
  leaves its highest layer, unless it is only joined to layer 1;
* the expected number of packets received between a join/leave event and the
  next join from level ``i`` to ``i + 1`` is ``2^(2(i-1))``.

The protocols differ only in *when* the join actually happens — randomly per
packet (Uncoordinated), after a fixed packet count (Deterministic), or at
sender-stamped sync points (Coordinated).  Protocol objects operate on
vectorised per-receiver state (numpy arrays) so the packet-level simulator
can update an entire session per packet.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..errors import ProtocolError
from ..layering.layers import LayerScheme
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet

__all__ = ["LayeredProtocol", "join_threshold_packets"]


def join_threshold_packets(level: int) -> float:
    """Expected packets between a join/leave event and the next join: ``2^(2(i-1))``."""
    if level < 1:
        raise ProtocolError(f"subscription level must be >= 1, got {level}")
    return float(2 ** (2 * (level - 1)))


class LayeredProtocol(abc.ABC):
    """A receiver-driven layered congestion-control protocol.

    Lifecycle: the simulation engine calls :meth:`reset` once per run, then
    for every packet it delivers the reception outcome through
    :meth:`on_congestion` (receivers that observed a loss) and
    :meth:`on_packet_received` (receivers that got the packet), the latter
    returning the boolean mask of receivers that decide to join an
    additional layer.  The engine applies the leave/join level changes itself
    and reports completed joins back through :meth:`on_join`.
    """

    #: Human-readable protocol name (used in experiment tables).
    name: str = "abstract"

    def __init__(self) -> None:
        self.num_receivers = 0
        self.scheme: Optional[LayerScheme] = None
        self._rng: Optional[np.random.Generator] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(
        self,
        num_receivers: int,
        scheme: LayerScheme,
        rng: np.random.Generator,
    ) -> None:
        """Prepare per-receiver state for a fresh simulation run."""
        if num_receivers < 1:
            raise ProtocolError(f"need at least one receiver, got {num_receivers}")
        self.num_receivers = num_receivers
        self.scheme = scheme
        self._rng = rng
        self._reset_state()

    def _reset_state(self) -> None:
        """Hook for subclasses to (re)initialise their per-receiver arrays."""

    def _require_ready(self) -> np.random.Generator:
        if self._rng is None or self.scheme is None:
            raise ProtocolError(
                f"protocol {self.name!r} used before reset(); call reset() first"
            )
        return self._rng

    # ------------------------------------------------------------------
    # per-packet hooks
    # ------------------------------------------------------------------
    def on_congestion(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        """Receivers in the mask observed a congestion event on this packet.

        The engine lowers their subscription level; subclasses reset any
        join-progress state here.
        """

    def congestion_leaves(
        self,
        congested: np.ndarray,
        levels: np.ndarray,
        packet: "Packet",
    ) -> np.ndarray:
        """Which receivers actually drop a layer after this congestion event.

        The receiver-driven protocols of the paper leave exactly when they
        observe congestion, so the default returns ``congested`` unchanged.
        Coordination placed *inside* the network (the active-node extension of
        Section 5) can override this to make group-wide leave decisions.
        """
        return congested

    @abc.abstractmethod
    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: Packet,
    ) -> np.ndarray:
        """Receivers in ``received`` got the packet; return the join mask.

        ``levels`` holds the *current* subscription level of every receiver
        (before any join resulting from this packet).  The returned boolean
        array marks receivers that should join one additional layer now; the
        engine clamps joins at the top layer.
        """

    def on_join(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        """Receivers in the mask completed a join (their level already raised)."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def join_probability_per_packet(self, levels: np.ndarray) -> np.ndarray:
        """Per-received-packet join probability giving the paper's expectation.

        Joining after a geometrically distributed number of packets with
        success probability ``2^(-2(i-1))`` makes the expected packet count
        between events exactly ``2^(2(i-1))``.
        """
        return 2.0 ** (-2.0 * (levels.astype(float) - 1.0))

    def join_threshold(self, levels: np.ndarray) -> np.ndarray:
        """Deterministic packet-count threshold ``2^(2(i-1))`` per receiver."""
        return 2.0 ** (2.0 * (levels.astype(float) - 1.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
