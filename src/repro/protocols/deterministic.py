"""The Deterministic protocol: join after a fixed count of loss-free packets.

"In the Deterministic protocol, there is also no inherent coordination; a
receiver joins an additional layer after receiving a fixed number of packets
without loss since its last join or leave event."  The fixed count is the
paper's ``2^(2(i-1))`` for a receiver at level ``i``.  Receivers with
identical loss histories behave identically, but receivers whose losses
differ even slightly desynchronise and stay desynchronised, so — like the
Uncoordinated protocol — redundancy grows with independent loss.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
from .base import LayeredProtocol

__all__ = ["DeterministicProtocol"]


class DeterministicProtocol(LayeredProtocol):
    """Counter-based joins; leaves (and counter resets) on congestion."""

    name = "deterministic"
    supports_batched_units = True
    supports_stacked_runs = True
    supports_bitpacked = True

    def _reset_state(self) -> None:
        self._received_since_event = np.zeros(self.num_receivers, dtype=np.int64)

    def on_congestion(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: Packet,
    ) -> np.ndarray:
        self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        self._received_since_event[received] += 1
        thresholds = self.join_threshold(levels)
        return received & (self._received_since_event >= thresholds)

    def on_join(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    # ------------------------------------------------------------------
    # batched-scan hooks
    # ------------------------------------------------------------------
    def scan_first_join(self, chunk, cols, act, levels_act, received, pos, fresh=True):
        # The counter a receiver would hold just after a packet (with state
        # frozen) is counter + (receptions so far); a join fires once it
        # reaches the 2^(2(i-1)) threshold — exactly the per-packet rule.
        # Only receivers whose counter can cross the threshold within the
        # window need the (small) cumulative scan.
        counters = self._received_since_event[act]
        thresholds = self.join_threshold(levels_act)
        # The visible column count bounds the receptions a row can add, so
        # rows whose counter deficit exceeds it are pruned before the
        # (much costlier) per-row reception counts.
        maybe = (counters + received.shape[1] >= thresholds) & (
            levels_act < chunk.num_layers
        )
        if not maybe.any():
            return None
        midx = np.nonzero(maybe)[0]
        totals = np.zeros(act.size, dtype=np.int64)
        totals[midx] = received[midx].sum(axis=1, dtype=np.int64)
        reachable = maybe & (counters + totals >= thresholds)
        if not reachable.any():
            return None
        ridx = np.nonzero(reachable)[0]
        part = received[ridx]
        running = part.cumsum(axis=1, dtype=np.int64)
        candidates = part & (counters[ridx][:, None] + running >= thresholds[ridx][:, None])
        first = candidates.argmax(axis=1)
        has_join = np.zeros(act.size, dtype=bool)
        index = np.zeros(act.size, dtype=np.int64)
        has_join[ridx] = candidates[np.arange(ridx.size), first]
        index[ridx] = first
        return has_join, index

    def scan_first_join_packed(self, chunk, view, act, levels_act, pos, fresh=True):
        # Packed mirror of scan_first_join: the join fires at the k-th
        # reception, where k is the smallest count lifting the frozen
        # counter to the 2^(2(i-1)) threshold — the k-th set bit of the
        # row instead of a dense cumulative scan.
        counters = self._received_since_event[act]
        thresholds = self.join_threshold(levels_act)
        maybe = (counters + view.num_obs_cols >= thresholds) & (
            levels_act < chunk.num_layers
        )
        if not maybe.any():
            return None
        midx = np.nonzero(maybe)[0]
        totals = np.zeros(act.size, dtype=np.int64)
        totals[midx] = view.counts(midx)
        reachable = maybe & (totals >= 1) & (counters + totals >= thresholds)
        if not reachable.any():
            return None
        ridx = np.nonzero(reachable)[0]
        need = np.maximum(1, np.ceil(thresholds[ridx] - counters[ridx])).astype(
            np.int64
        )
        has_join = np.zeros(act.size, dtype=bool)
        index = np.zeros(act.size, dtype=np.int64)
        has_join[ridx] = True
        index[ridx] = view.kth_set(ridx, need)
        return has_join, index

    def scan_bulk_received(self, receivers: np.ndarray, counts: np.ndarray) -> None:
        self._received_since_event[receivers] += counts

    def scan_congested(self, receivers: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    def scan_joined(self, receivers: np.ndarray, levels_receivers: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    @property
    def received_since_event(self) -> np.ndarray:
        """Per-receiver count of packets received since the last join/leave."""
        return self._received_since_event.copy()
