"""The Deterministic protocol: join after a fixed count of loss-free packets.

"In the Deterministic protocol, there is also no inherent coordination; a
receiver joins an additional layer after receiving a fixed number of packets
without loss since its last join or leave event."  The fixed count is the
paper's ``2^(2(i-1))`` for a receiver at level ``i``.  Receivers with
identical loss histories behave identically, but receivers whose losses
differ even slightly desynchronise and stay desynchronised, so — like the
Uncoordinated protocol — redundancy grows with independent loss.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
from . import bitpack
from .base import LayeredProtocol

__all__ = ["DeterministicProtocol"]


class DeterministicProtocol(LayeredProtocol):
    """Counter-based joins; leaves (and counter resets) on congestion."""

    name = "deterministic"
    supports_batched_units = True
    supports_stacked_runs = True
    supports_bitpacked = True
    supports_chain_join = True

    # Join-progress state (the received-since-event counter) and its
    # per-packet/scan maintenance are the LayeredProtocol base defaults.
    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: Packet,
    ) -> np.ndarray:
        self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        self._received_since_event[received] += 1
        thresholds = self.join_threshold(levels)
        return received & (self._received_since_event >= thresholds)

    # ------------------------------------------------------------------
    # batched-scan hooks
    # ------------------------------------------------------------------
    def scan_first_join(self, chunk, cols, act, levels_act, received, pos, fresh=True):
        # The counter a receiver would hold just after a packet (with state
        # frozen) is counter + (receptions so far); a join fires once it
        # reaches the 2^(2(i-1)) threshold — exactly the per-packet rule.
        # Only receivers whose counter can cross the threshold within the
        # window need the (small) cumulative scan.
        counters = self._received_since_event[act]
        thresholds = self.join_threshold(levels_act)
        # The visible column count bounds the receptions a row can add, so
        # rows whose counter deficit exceeds it are pruned before the
        # (much costlier) per-row reception counts.
        maybe = (counters + received.shape[1] >= thresholds) & (
            levels_act < chunk.num_layers
        )
        if not maybe.any():
            return None
        midx = np.nonzero(maybe)[0]
        totals = np.zeros(act.size, dtype=np.int64)
        totals[midx] = received[midx].sum(axis=1, dtype=np.int64)
        reachable = maybe & (counters + totals >= thresholds)
        if not reachable.any():
            return None
        ridx = np.nonzero(reachable)[0]
        part = received[ridx]
        running = part.cumsum(axis=1, dtype=np.int64)
        candidates = part & (counters[ridx][:, None] + running >= thresholds[ridx][:, None])
        first = candidates.argmax(axis=1)
        has_join = np.zeros(act.size, dtype=bool)
        index = np.zeros(act.size, dtype=np.int64)
        has_join[ridx] = candidates[np.arange(ridx.size), first]
        index[ridx] = first
        return has_join, index

    def scan_first_join_packed(self, chunk, view, act, levels_act, pos, fresh=True, cong=None):
        # Packed mirror of scan_first_join: the join fires at the k-th
        # reception, where k is the smallest count lifting the frozen
        # counter to the 2^(2(i-1)) threshold — the k-th set bit of the
        # row instead of a dense cumulative scan.
        counters = self._received_since_event[act]
        thresholds = self.join_threshold(levels_act)
        maybe = (counters + view.num_obs_cols >= thresholds) & (
            levels_act < chunk.num_layers
        )
        if not maybe.any():
            return None
        midx = maybe.nonzero()[0]
        # Thresholds are exact powers of four, so the float ceil of the
        # remaining packet need collapses to integer arithmetic.
        need = thresholds[midx].astype(np.int64) - counters[midx]
        np.maximum(need, 1, out=need)
        if cong is None:
            avail = view.counts(midx)
        else:
            # Only a join strictly before the row's congestion candidate is
            # ever consumed, so count receptions up to there (the whole
            # window where no candidate exists) — one prefix popcount
            # instead of an exact rank selection for rows whose join the
            # scan would discard anyway.
            has_cong, e_cong = cong
            limit = np.where(has_cong[midx], e_cong[midx], view.col_hi)
            avail = view.prefix_counts(midx, limit)
        fire = avail >= need
        if not fire.any():
            return None
        ridx = midx[fire]
        has_join = np.zeros(act.size, dtype=bool)
        index = np.zeros(act.size, dtype=np.int64)
        has_join[ridx] = True
        index[ridx] = view.kth_set(ridx, need[fire])
        return has_join, index

    def scan_chain_gap(self, chunk, rows, levels_rows, gap_counts, gap_lo, gap_hi):
        # The counter is zero right after the consumed congestion event, so
        # the join fires inside the gap exactly when its receptions reach
        # the fixed 2^(2(i-1)) threshold — an exact test, not a
        # conservative one.
        return (levels_rows < chunk.num_layers) & (
            gap_counts >= self.join_threshold(levels_rows)
        )

    def scan_chain_join_packed(
        self, chunk, words, base_col, rows, levels_rows, gap_counts, gap_lo, gap_hi
    ):
        # Same zero-counter invariant as scan_chain_gap, made exact in
        # both directions: the join is the row's threshold-th reception
        # inside the gap — the threshold-th set bit of its packed row
        # (bits below the position are cleared, and the join's existence
        # inside the gap bounds the rank below ``gap_hi``).
        need = self.join_threshold(levels_rows).astype(np.int64)
        has_join = (levels_rows < chunk.num_layers) & (gap_counts >= need)
        col = gap_hi
        if has_join.any():
            jidx = has_join.nonzero()[0]
            col = gap_hi.copy()
            col[jidx] = bitpack.kth_set(words[jidx], base_col, need[jidx])
        return has_join, col, need
