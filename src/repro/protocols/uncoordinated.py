"""The Uncoordinated protocol: random per-packet join decisions.

"In the Uncoordinated protocol, there is no inherent coordination: upon
receiving a packet, a receiver randomly decides whether to join an
additional layer."  The per-packet join probability is ``2^(-2(i-1))`` for a
receiver at level ``i``, so the expected number of packets received between
a join/leave event and the next join matches the paper's ``2^(2(i-1))``
parameterisation.  Because each receiver draws independently, receivers that
see identical loss patterns still drift apart in their layer subscriptions,
which is what drives this protocol's higher redundancy in Figure 8.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
from ..errors import ProtocolError
from .base import LayeredProtocol

__all__ = ["UncoordinatedProtocol"]


class UncoordinatedProtocol(LayeredProtocol):
    """Random, memoryless joins; leaves on every congestion event.

    Since ``RNG_SCHEME_VERSION >= 3`` the per-packet join uniforms are
    pre-sampled once per time unit in :meth:`begin_unit` (one
    receiver-major ``(receivers, packets)`` draw), so the per-packet
    reference path and the batched scan read the same numbers from the
    same stream.
    When the protocol is driven directly — outside an engine run, with no
    unit loaded — :meth:`on_packet_received` falls back to drawing fresh
    uniforms per packet.
    """

    name = "uncoordinated"
    supports_batched_units = True
    supports_stacked_runs = True

    def _reset_state(self) -> None:
        self._unit_draws = None
        self._chunk_buffer = None
        self._chunk_draw_exponents = None
        self._chunk_runs = 1
        self._fill_count = 0

    def begin_unit(self, rng, num_packets, num_receivers=None):
        count = self.num_receivers if num_receivers is None else num_receivers
        if self._chunk_buffer is None:
            self._unit_draws = rng.random((count, num_packets))
            return
        # Batched path: draw straight into this chunk's pre-sized buffer.
        # Units arrive in order, with one block per stacked run inside each
        # unit (the engine's sampling order).
        unit = self._fill_count // self._chunk_runs
        run = self._fill_count % self._chunk_runs
        block = self._chunk_buffer[
            run * count:(run + 1) * count,
            unit * num_packets:(unit + 1) * num_packets,
        ]
        block[...] = rng.random((count, num_packets))
        self._unit_draws = block
        self._fill_count += 1

    def begin_chunk(self, num_runs: int = 1, num_units: int = 1, packets_per_unit: int = 0) -> None:
        shape = (self.num_receivers, num_units * packets_per_unit)
        if self._chunk_buffer is None or self._chunk_buffer.shape != shape:
            self._chunk_buffer = np.empty(shape)
        self._chunk_draw_exponents = None
        self._chunk_runs = num_runs
        self._fill_count = 0

    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: Packet,
    ) -> np.ndarray:
        rng = self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        probabilities = self.join_probability_per_packet(levels)
        if self._unit_draws is not None:
            draws = self._unit_draws[:, packet.sequence % self._unit_draws.shape[1]]
        else:
            draws = rng.random(self.num_receivers)
        return received & (draws < probabilities)

    # ------------------------------------------------------------------
    # batched-scan hooks
    # ------------------------------------------------------------------
    def scan_first_join(self, chunk, cols, act, levels_act, received, pos, fresh=True):
        if self._chunk_draw_exponents is None:
            if self._chunk_buffer is None:
                raise ProtocolError(
                    "uncoordinated batched scan needs begin_chunk()/begin_unit() "
                    "to pre-sample its join draws"
                )
            # The join thresholds 2^(-2(i-1)) are exact binary powers, so
            # ``draw < threshold`` depends only on the draw's IEEE-754
            # exponent: ``draw < 2^(-2(i-1))`` iff its biased exponent is at
            # most ``1022 - 2(i-1)``.  Storing the exponent field therefore
            # reproduces the float comparisons bit for bit while turning
            # the per-window test into a cheap int16 comparison (zeros and
            # subnormals have exponent 0 and clear every level's bar).
            self._chunk_draw_exponents = (
                self._chunk_buffer.view(np.uint64) >> np.uint64(52)
            ).astype(np.int16)
        if act.size == self.num_receivers:
            exponents = self._chunk_draw_exponents[:, cols]
        else:
            exponents = self._chunk_draw_exponents[act[:, None], cols[None, :]]
        # Fold the top-level clamp into the bar: exponent fields are
        # non-negative, so a negative bar never matches.
        bars = np.where(
            levels_act < chunk.num_layers, 1024 - 2 * levels_act, -1
        ).astype(np.int16)
        candidates = received & (exponents <= bars[:, None])
        first = candidates.argmax(axis=1)
        return candidates[np.arange(act.size), first], first
