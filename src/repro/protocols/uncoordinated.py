"""The Uncoordinated protocol: random per-packet join decisions.

"In the Uncoordinated protocol, there is no inherent coordination: upon
receiving a packet, a receiver randomly decides whether to join an
additional layer."  The per-packet join probability is ``2^(-2(i-1))`` for a
receiver at level ``i``, so the expected number of packets received between
a join/leave event and the next join matches the paper's ``2^(2(i-1))``
parameterisation.  Because each receiver draws independently, receivers that
see identical loss patterns still drift apart in their layer subscriptions,
which is what drives this protocol's higher redundancy in Figure 8.

**Counter-based draws (RNG scheme 4).**  Between two join/leave events a
receiver's level — and hence its per-received-packet join probability
``q = 2^(-2(i-1))`` — is constant, so the number of received packets up to
and including the next join is geometrically distributed.  Since scheme 4
each receiver owns a counter-based Philox stream
(:class:`repro.simulator.rng.ReceiverDrawStreams`) and consumes exactly one
uniform per join/leave event, inverted through the geometric CDF into a
*next-join countdown* of received packets.  The process law is identical to
per-packet Bernoulli draws (geometric memorylessness), both engines agree
bit for bit on the event sequence and therefore on every draw, and the
batched scan materialises draws proportional to the event density instead
of scheme 3's uniform for every ``receiver x scheduled packet``.  When the
protocol is driven directly — outside an engine run, with no streams
bound — :meth:`on_packet_received` falls back to drawing fresh per-packet
uniforms from the generator passed to :meth:`reset`.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
    from ..simulator.rng import ReceiverDrawStreams
from ..errors import ProtocolError
from . import bitpack
from .base import LayeredProtocol

__all__ = ["UncoordinatedProtocol"]

#: Next-join countdown of receivers at the top level (they cannot join, so
#: no draw is consumed for them until a leave re-arms the countdown); large
#: enough that per-reception decrements can never reach zero.
_TOP_LEVEL_SENTINEL = np.int64(2) ** 62


class UncoordinatedProtocol(LayeredProtocol):
    """Random, memoryless joins; leaves on every congestion event."""

    name = "uncoordinated"
    supports_batched_units = True
    supports_stacked_runs = True
    supports_bitpacked = True
    supports_chain_join = True

    def _reset_state(self) -> None:
        super()._reset_state()
        self._streams: Optional["ReceiverDrawStreams"] = None
        self._countdown = np.full(self.num_receivers, _TOP_LEVEL_SENTINEL)
        # log(1 - q_l) per level (index 0 unused); level 1 has q = 1, whose
        # -inf divisor maps any draw to countdown 1 without special-casing.
        assert self.scheme is not None
        levels = np.arange(self.scheme.num_layers + 1, dtype=np.float64)
        levels[0] = 1.0  # index 0 unused; keep the table free of NaNs
        with np.errstate(divide="ignore"):
            self._log_miss = np.log1p(-self.join_probability_per_packet(levels))

    def bind_run_streams(self, streams, receivers_per_run: int) -> None:
        from ..simulator.rng import ReceiverDrawStreams

        seeds = [
            seed
            for run_streams in streams
            for seed in run_streams.join_stream_seeds()
        ]
        self._streams = ReceiverDrawStreams(seeds)
        # Every receiver starts at level 1; arm its first countdown.
        rows = np.arange(self._streams.num_rows)
        self._countdown = np.full(rows.size, _TOP_LEVEL_SENTINEL)
        self._rearm(rows, np.ones(rows.size, dtype=np.int64))

    def _rearm(self, rows: np.ndarray, levels_rows: np.ndarray) -> None:
        """Draw fresh next-join countdowns for rows after a level change.

        Rows at the top level consume no draw and get the sentinel; the
        rest consume one uniform each from their own stream, inverted
        through the geometric CDF: ``T = max(1, ceil(log(1-U)/log(1-q)))``
        received packets until (and including) the joining one.
        """
        assert self.scheme is not None
        top = self.scheme.num_layers
        below = levels_rows < top
        self._countdown[rows[~below]] = _TOP_LEVEL_SENTINEL
        rows = rows[below]
        if rows.size == 0:
            return
        draws = self._streams.take(rows)
        pulls = np.ceil(np.log1p(-draws) / self._log_miss[levels_rows[below]])
        self._countdown[rows] = np.maximum(
            1, np.minimum(pulls, float(_TOP_LEVEL_SENTINEL))
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # per-packet hooks (reference engine / direct drive)
    # ------------------------------------------------------------------
    def on_congestion(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        # The geometric countdown is memoryless: congestion alone does not
        # re-arm it (only the leave it may cause does, via on_leave), so the
        # base counter reset is deliberately suppressed.
        pass

    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: "Packet",
    ) -> np.ndarray:
        rng = self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        if self._streams is None:
            # Direct drive without engine streams: memoryless per-packet
            # uniforms, exactly the paper's formulation.
            probabilities = self.join_probability_per_packet(levels)
            return received & (rng.random(levels.size) < probabilities)
        self._countdown[received] -= 1
        return received & (self._countdown <= 0)

    def on_join(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        if self._streams is not None:
            rows = np.nonzero(receivers)[0]
            self._rearm(rows, levels[rows])

    def on_leave(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        if self._streams is not None:
            rows = np.nonzero(receivers)[0]
            self._rearm(rows, levels[rows])

    # ------------------------------------------------------------------
    # batched-scan hooks
    # ------------------------------------------------------------------
    def scan_first_join(self, chunk, cols, act, levels_act, received, pos, fresh=True):
        if self._streams is None:
            raise ProtocolError(
                "uncoordinated batched scan needs bind_run_streams() to "
                "attach its per-receiver draw streams"
            )
        countdown = self._countdown[act]
        # A row cannot join unless its countdown fits in the visible
        # columns, which prunes the per-row reception counts to the few
        # candidate rows (top-level sentinels never pass).
        maybe = countdown <= received.shape[1]
        if not bool(maybe.any()):
            return None
        has_join = np.zeros(act.size, dtype=bool)
        midx = np.nonzero(maybe)[0]
        counts = received[midx].sum(axis=1, dtype=np.int64)
        has_join[midx] = countdown[midx] <= counts
        if not bool(has_join[midx].any()):
            return None
        # The joining packet is each row's countdown-th visible reception.
        # Countdown 1 — every level-1 receiver, and the overwhelmingly
        # common case at low levels — is just the first reception; only the
        # rare deeper countdowns need a cumulative scan.
        index = np.zeros(act.size, dtype=np.int64)
        candidates = np.nonzero(has_join)[0]
        first = candidates[countdown[candidates] == 1]
        if first.size:
            index[first] = received[first].argmax(axis=1)
        deeper = candidates[countdown[candidates] > 1]
        if deeper.size:
            part = received[deeper]
            running = part.cumsum(axis=1, dtype=np.int64)
            index[deeper] = (
                (running == countdown[deeper][:, None]) & part
            ).argmax(axis=1)
        return has_join, index

    def scan_first_join_packed(self, chunk, view, act, levels_act, pos, fresh=True, cong=None):
        if self._streams is None:
            raise ProtocolError(
                "uncoordinated batched scan needs bind_run_streams() to "
                "attach its per-receiver draw streams"
            )
        countdown = self._countdown[act]
        # Same candidate pruning as the dense hook: a row cannot join
        # unless its countdown fits in the observable columns.
        maybe = countdown <= view.num_obs_cols
        if not bool(maybe.any()):
            return None
        midx = maybe.nonzero()[0]
        if cong is None:
            counts = view.counts(midx)
        else:
            # Only a join strictly before the row's congestion candidate
            # is ever consumed (the scan takes the earlier event), so one
            # prefix popcount up to there replaces the rank selection for
            # rows whose join would be discarded.
            has_cong, e_cong = cong
            limit = np.where(has_cong[midx], e_cong[midx], view.col_hi)
            counts = view.prefix_counts(midx, limit)
        fire = countdown[midx] <= counts
        if not bool(fire.any()):
            return None
        candidates = midx[fire]
        # The joining packet is each row's countdown-th reception — the
        # countdown-th set bit of its packed row.
        has_join = np.zeros(act.size, dtype=bool)
        has_join[candidates] = True
        index = np.zeros(act.size, dtype=np.int64)
        index[candidates] = view.kth_set(candidates, countdown[candidates])
        return has_join, index

    def scan_chain_gap(self, chunk, rows, levels_rows, gap_counts, gap_lo, gap_hi):
        # The joining packet is each row's countdown-th reception (the
        # countdown was re-armed by the leave that ended the last gap, or
        # carried across a level-1 congestion), so the join falls inside
        # the gap exactly when the countdown fits its reception count.
        # Top-level rows hold the sentinel and never break the chain.
        return self._countdown[rows] <= gap_counts

    def scan_chain_join_packed(
        self, chunk, words, base_col, rows, levels_rows, gap_counts, gap_lo, gap_hi
    ):
        # Exact counterpart of scan_chain_gap: the join is the row's
        # countdown-th reception inside the gap — the countdown-th set bit
        # of its packed row (bits below the position are cleared, and the
        # fit inside the gap bounds the rank below ``gap_hi``).  Top-level
        # rows hold the sentinel and never fire.
        countdown = self._countdown[rows]
        has_join = countdown <= gap_counts
        col = gap_hi
        if has_join.any():
            jidx = has_join.nonzero()[0]
            col = gap_hi.copy()
            col[jidx] = bitpack.kth_set(words[jidx], base_col, countdown[jidx])
        return has_join, col, countdown

    def scan_bulk_received(self, receivers: np.ndarray, counts: np.ndarray) -> None:
        self._countdown[receivers] -= counts

    def scan_congested(self, receivers: np.ndarray) -> None:
        # Mirror of on_congestion: the countdown survives congestion.
        pass

    def scan_joined(self, receivers: np.ndarray, levels_receivers: np.ndarray) -> None:
        self._rearm(receivers, levels_receivers)

    def scan_left(self, receivers: np.ndarray, levels_receivers: np.ndarray) -> None:
        self._rearm(receivers, levels_receivers)

    @property
    def next_join_countdown(self) -> np.ndarray:
        """Per-receiver received packets remaining until the next join
        (engine runs only; top-level receivers hold a large sentinel)."""
        return self._countdown.copy()
