"""The Uncoordinated protocol: random per-packet join decisions.

"In the Uncoordinated protocol, there is no inherent coordination: upon
receiving a packet, a receiver randomly decides whether to join an
additional layer."  The per-packet join probability is ``2^(-2(i-1))`` for a
receiver at level ``i``, so the expected number of packets received between
a join/leave event and the next join matches the paper's ``2^(2(i-1))``
parameterisation.  Because each receiver draws independently, receivers that
see identical loss patterns still drift apart in their layer subscriptions,
which is what drives this protocol's higher redundancy in Figure 8.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
from .base import LayeredProtocol

__all__ = ["UncoordinatedProtocol"]


class UncoordinatedProtocol(LayeredProtocol):
    """Random, memoryless joins; leaves on every congestion event."""

    name = "uncoordinated"

    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: Packet,
    ) -> np.ndarray:
        rng = self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        probabilities = self.join_probability_per_packet(levels)
        draws = rng.random(self.num_receivers)
        return received & (draws < probabilities)
