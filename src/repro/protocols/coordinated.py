"""The Coordinated protocol: sender-stamped, nested join opportunities.

"In the Coordinated protocol, the sender indicates (e.g., through a field
within its transmitted packet) when receivers should join an additional
layer.  This is done in such a way so that when the field indicates that
receivers joined up to layer i should join layer i+1, it also indicates that
receivers joined up to layer j < i should join layer j + 1."

The sender marks the layer-1 packet at the start of time unit ``u`` with a
join opportunity for every level ``i`` whose period ``2^(i-1)`` divides
``u`` (see :class:`repro.simulator.packets.PacketSchedule`); the nesting
requirement holds by construction.  A receiver at level ``i`` may join only
at a level-``i`` sync point, and only if it has accumulated enough loss-free
packets since its last join/leave event.

Calibration.  The paper requires all three protocols to share the same
expected probe interval: ``2^(2(i-1))`` packets received between a
join/leave event and the next join from level ``i``.  A level-``i`` receiver
receives ``2^(i-1)`` packets per time unit and level-``i`` sync points are
``2^(i-1)`` time units apart, so waiting for *half* the probe interval in
received packets and then for the next sync point gives exactly the required
expectation (half from the packet gate, half from the uniformly distributed
phase of the next sync point).  The gate fraction is configurable through
``sync_threshold_fraction``.

Because receivers at the same level share the same join instants, their
subscriptions move up in lock-step and the shared link rarely carries layers
wanted by only a few receivers — the mechanism that keeps redundancy lowest
among the three protocols in Figure 8.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from ..errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
from .base import LayeredProtocol

__all__ = ["CoordinatedProtocol"]


class CoordinatedProtocol(LayeredProtocol):
    """Joins only at sender-coordinated sync points, gated on loss-free progress."""

    name = "coordinated"
    supports_batched_units = True
    supports_stacked_runs = True
    supports_bitpacked = True

    def __init__(self, sync_threshold_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= sync_threshold_fraction <= 1.0:
            raise ProtocolError(
                "sync_threshold_fraction must lie in [0, 1], got "
                f"{sync_threshold_fraction}"
            )
        self.sync_threshold_fraction = float(sync_threshold_fraction)

    def stacking_key(self) -> tuple:
        return (type(self), self.sync_threshold_fraction)

    def _reset_state(self) -> None:
        # Loss-free packets received since the last join/leave event.
        self._received_since_event = np.zeros(self.num_receivers, dtype=np.int64)

    def on_congestion(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: Packet,
    ) -> np.ndarray:
        self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        self._received_since_event[received] += 1
        if not packet.sync_levels:
            return np.zeros_like(received)
        sync_levels = np.asarray(packet.sync_levels, dtype=levels.dtype)
        at_sync_level = np.isin(levels, sync_levels)
        gate = self.sync_threshold_fraction * self.join_threshold(levels)
        ready = self._received_since_event >= gate
        return received & at_sync_level & ready

    def on_join(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    # ------------------------------------------------------------------
    # batched-scan hooks
    # ------------------------------------------------------------------
    def scan_boundary(self, chunk, lo, act, levels_act, pos):
        """End the scan window at the next *plausible* sync point.

        A level-``i`` receiver cannot join before its counter reaches the
        gate, and the counter cannot grow faster than the packets it can
        observe, so sync points the observed-packet bound rules out for
        every receiver are skipped wholesale.  The window ends just after
        the first surviving sync point, which is therefore the only column
        :meth:`scan_first_join` has to inspect.
        """
        sync_cols = chunk.sync_cols
        start = np.searchsorted(sync_cols, lo)
        if start >= sync_cols.size:
            return chunk.num_packets
        ahead = sync_cols[start:]
        gate = self.sync_threshold_fraction * self.join_threshold(levels_act)
        headroom = gate - self._received_since_event[act]
        eligible = chunk.sync_ok[start:][:, levels_act] & (levels_act < chunk.num_layers)[None, :]
        observed = (
            chunk.observed_before[levels_act[None, :], ahead[:, None] + 1]
            - chunk.observed_before[levels_act, pos][None, :]
        )
        plausible = (eligible & (observed >= headroom[None, :])).any(axis=1)
        index = int(plausible.argmax())
        if not plausible[index]:
            return chunk.num_packets
        return int(ahead[index]) + 1

    def scan_first_join(self, chunk, cols, act, levels_act, received, pos, fresh=True):
        if fresh:
            # Whole-window call: scan_boundary already ruled out every sync
            # point before the window's final column under the receivers'
            # current state (counters only shrink until their next event,
            # which triggers the exhaustive re-check below), so the
            # per-packet join rule collapses to one vector test there.
            sync_col = int(cols[-1])
            where = np.searchsorted(chunk.sync_cols, sync_col)
            if where >= chunk.sync_cols.size or chunk.sync_cols[where] != sync_col:
                return None
            at_sync = chunk.sync_ok[where, levels_act]
            if not at_sync.any():
                return None
            gate = self.sync_threshold_fraction * self.join_threshold(levels_act)
            counters = self._received_since_event[act]
            totals = received.sum(axis=1, dtype=np.int64)
            has_join = (
                received[:, -1]
                & at_sync
                & (counters + totals >= gate)
                & (levels_act < chunk.num_layers)
            )
            return has_join, np.full(act.size, cols.size - 1, dtype=np.int64)
        # Post-event re-check for a few receivers: a leave may have lowered
        # the gate below what the window boundary assumed, so every sync
        # point still ahead inside the window must be inspected.
        s_lo = np.searchsorted(chunk.sync_cols, cols[0])
        s_hi = np.searchsorted(chunk.sync_cols, cols[-1], side="right")
        if s_lo == s_hi:
            return None
        sync_sel = chunk.sync_cols[s_lo:s_hi]
        sync_at = np.searchsorted(cols, sync_sel)
        at_sync = chunk.sync_ok[s_lo:s_hi][:, levels_act].T
        gate = self.sync_threshold_fraction * self.join_threshold(levels_act)
        counters = self._received_since_event[act]
        running = received.cumsum(axis=1, dtype=np.int64)[:, sync_at]
        candidates = (
            received[:, sync_at]
            & at_sync
            & (counters[:, None] + running >= gate[:, None])
            & (levels_act < chunk.num_layers)[:, None]
        )
        first = candidates.argmax(axis=1)
        has_join = candidates[np.arange(act.size), first]
        return has_join, sync_at[first]

    def scan_first_join_packed(self, chunk, view, act, levels_act, pos, fresh=True):
        num_layers = chunk.num_layers
        gate = self.sync_threshold_fraction * self.join_threshold(levels_act)
        counters = self._received_since_event[act]
        if fresh:
            # Packed mirror of the dense fresh path: scan_boundary bounded
            # the window at the next plausible sync point, so only the
            # window's last observable column can trigger a join.
            sync_col = view.last_obs_col
            where = np.searchsorted(chunk.sync_cols, sync_col)
            if where >= chunk.sync_cols.size or chunk.sync_cols[where] != sync_col:
                return None
            at_sync = chunk.sync_ok[where, levels_act]
            if not at_sync.any():
                return None
            totals = view.counts()
            has_join = (
                view.bit_at(sync_col)
                & at_sync
                & (counters + totals >= gate)
                & (levels_act < num_layers)
            )
            return has_join, np.full(act.size, sync_col, dtype=np.int64)
        # Post-event re-check: inspect every sync point still inside the
        # window (reception bits before each row's position are already
        # masked out of the packed rows, exactly like the dense path).
        s_lo = np.searchsorted(chunk.sync_cols, view.col_lo)
        s_hi = np.searchsorted(chunk.sync_cols, view.col_hi)
        if s_lo == s_hi:
            return None
        sync_sel = chunk.sync_cols[s_lo:s_hi]
        at_sync = chunk.sync_ok[s_lo:s_hi][:, levels_act].T
        running = view.prefix_counts_multi(sync_sel + 1)
        candidates = (
            view.bit_at(sync_sel)
            & at_sync
            & (counters[:, None] + running >= gate[:, None])
            & (levels_act < num_layers)[:, None]
        )
        first = candidates.argmax(axis=1)
        has_join = candidates[np.arange(act.size), first]
        return has_join, sync_sel[first].astype(np.int64)

    def scan_bulk_received(self, receivers: np.ndarray, counts: np.ndarray) -> None:
        self._received_since_event[receivers] += counts

    def scan_congested(self, receivers: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    def scan_joined(self, receivers: np.ndarray, levels_receivers: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    @property
    def received_since_event(self) -> np.ndarray:
        """Per-receiver count of loss-free packets since the last join/leave event."""
        return self._received_since_event.copy()
