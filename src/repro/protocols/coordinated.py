"""The Coordinated protocol: sender-stamped, nested join opportunities.

"In the Coordinated protocol, the sender indicates (e.g., through a field
within its transmitted packet) when receivers should join an additional
layer.  This is done in such a way so that when the field indicates that
receivers joined up to layer i should join layer i+1, it also indicates that
receivers joined up to layer j < i should join layer j + 1."

The sender marks the layer-1 packet at the start of time unit ``u`` with a
join opportunity for every level ``i`` whose period ``2^(i-1)`` divides
``u`` (see :class:`repro.simulator.packets.PacketSchedule`); the nesting
requirement holds by construction.  A receiver at level ``i`` may join only
at a level-``i`` sync point, and only if it has accumulated enough loss-free
packets since its last join/leave event.

Calibration.  The paper requires all three protocols to share the same
expected probe interval: ``2^(2(i-1))`` packets received between a
join/leave event and the next join from level ``i``.  A level-``i`` receiver
receives ``2^(i-1)`` packets per time unit and level-``i`` sync points are
``2^(i-1)`` time units apart, so waiting for *half* the probe interval in
received packets and then for the next sync point gives exactly the required
expectation (half from the packet gate, half from the uniformly distributed
phase of the next sync point).  The gate fraction is configurable through
``sync_threshold_fraction``.

Because receivers at the same level share the same join instants, their
subscriptions move up in lock-step and the shared link rarely carries layers
wanted by only a few receivers — the mechanism that keeps redundancy lowest
among the three protocols in Figure 8.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from ..errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
from . import bitpack
from .base import LayeredProtocol

__all__ = ["CoordinatedProtocol"]


class CoordinatedProtocol(LayeredProtocol):
    """Joins only at sender-coordinated sync points, gated on loss-free progress."""

    name = "coordinated"
    supports_batched_units = True
    supports_stacked_runs = True
    supports_bitpacked = True
    supports_chain_join = True

    def __init__(self, sync_threshold_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= sync_threshold_fraction <= 1.0:
            raise ProtocolError(
                "sync_threshold_fraction must lie in [0, 1], got "
                f"{sync_threshold_fraction}"
            )
        self.sync_threshold_fraction = float(sync_threshold_fraction)

    def stacking_key(self) -> tuple:
        return (type(self), self.sync_threshold_fraction)

    # Join-progress state (the received-since-event counter) and its
    # per-packet/scan maintenance are the LayeredProtocol base defaults.
    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: Packet,
    ) -> np.ndarray:
        self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        self._received_since_event[received] += 1
        if not packet.sync_levels:
            return np.zeros_like(received)
        sync_levels = np.asarray(packet.sync_levels, dtype=levels.dtype)
        at_sync_level = np.isin(levels, sync_levels)
        gate = self.sync_threshold_fraction * self.join_threshold(levels)
        ready = self._received_since_event >= gate
        return received & at_sync_level & ready

    # ------------------------------------------------------------------
    # batched-scan hooks
    # ------------------------------------------------------------------
    def scan_boundary(self, chunk, lo, act, levels_act, pos):
        """End the scan window at the next *plausible* sync point.

        A level-``i`` receiver cannot join before its counter reaches the
        gate, and the counter cannot grow faster than the packets it can
        observe, so sync points the observed-packet bound rules out for
        every receiver are skipped wholesale.  The window ends just after
        the first surviving sync point, which is therefore the only column
        :meth:`scan_first_join` has to inspect.

        The bit-packed scan is exempt: its join hook inspects every sync
        point of a window in one vectorised pass (prefix popcounts), so
        wide windows beat the per-sync-point window establishments the
        pruning would force.
        """
        if chunk.receivable_packed is not None:
            return chunk.num_packets
        sync_cols = chunk.sync_cols
        start = np.searchsorted(sync_cols, lo)
        if start >= sync_cols.size:
            return chunk.num_packets
        ahead = sync_cols[start:]
        gate = self.sync_threshold_fraction * self.join_threshold(levels_act)
        headroom = gate - self._received_since_event[act]
        eligible = chunk.sync_ok[start:][:, levels_act] & (levels_act < chunk.num_layers)[None, :]
        observed = (
            chunk.observed_before[levels_act[None, :], ahead[:, None] + 1]
            - chunk.observed_before[levels_act, pos][None, :]
        )
        plausible = (eligible & (observed >= headroom[None, :])).any(axis=1)
        index = int(plausible.argmax())
        if not plausible[index]:
            return chunk.num_packets
        return int(ahead[index]) + 1

    def scan_first_join(self, chunk, cols, act, levels_act, received, pos, fresh=True):
        if fresh:
            # Whole-window call: scan_boundary already ruled out every sync
            # point before the window's final column under the receivers'
            # current state (counters only shrink until their next event,
            # which triggers the exhaustive re-check below), so the
            # per-packet join rule collapses to one vector test there.
            sync_col = int(cols[-1])
            where = np.searchsorted(chunk.sync_cols, sync_col)
            if where >= chunk.sync_cols.size or chunk.sync_cols[where] != sync_col:
                return None
            at_sync = chunk.sync_ok[where, levels_act]
            if not at_sync.any():
                return None
            gate = self.sync_threshold_fraction * self.join_threshold(levels_act)
            counters = self._received_since_event[act]
            totals = received.sum(axis=1, dtype=np.int64)
            has_join = (
                received[:, -1]
                & at_sync
                & (counters + totals >= gate)
                & (levels_act < chunk.num_layers)
            )
            return has_join, np.full(act.size, cols.size - 1, dtype=np.int64)
        # Post-event re-check for a few receivers: a leave may have lowered
        # the gate below what the window boundary assumed, so every sync
        # point still ahead inside the window must be inspected.
        s_lo = np.searchsorted(chunk.sync_cols, cols[0])
        s_hi = np.searchsorted(chunk.sync_cols, cols[-1], side="right")
        if s_lo == s_hi:
            return None
        sync_sel = chunk.sync_cols[s_lo:s_hi]
        sync_at = np.searchsorted(cols, sync_sel)
        at_sync = chunk.sync_ok[s_lo:s_hi][:, levels_act].T
        gate = self.sync_threshold_fraction * self.join_threshold(levels_act)
        counters = self._received_since_event[act]
        running = received.cumsum(axis=1, dtype=np.int64)[:, sync_at]
        candidates = (
            received[:, sync_at]
            & at_sync
            & (counters[:, None] + running >= gate[:, None])
            & (levels_act < chunk.num_layers)[:, None]
        )
        first = candidates.argmax(axis=1)
        has_join = candidates[np.arange(act.size), first]
        return has_join, sync_at[first]

    def scan_first_join_packed(self, chunk, view, act, levels_act, pos, fresh=True, cong=None):
        # Packed windows are not boundary-pruned to a single sync point
        # (see scan_boundary): every sync point inside the view — whether
        # it is a fresh window or a post-event segment — is inspected in
        # one vectorised pass.  Reception bits before each row's position
        # are already masked out of the packed rows, so a sync point a row
        # has consumed past cannot produce a candidate.
        hi_col = view.col_hi
        if cong is not None and bool(cong[0].all()):
            # Every row has a congestion candidate; sync points past the
            # latest one can never be consumed (the scan always takes the
            # earlier event), so the inspected range shrinks to match.
            hi_col = min(hi_col, int(cong[1].max()) + 1)
        s_lo = int(chunk.sync_cols.searchsorted(view.col_lo))
        s_hi = int(chunk.sync_cols.searchsorted(hi_col))
        if s_lo == s_hi:
            return None
        num_layers = chunk.num_layers
        gate = self.sync_threshold_fraction * self.join_threshold(levels_act)
        counters = self._received_since_event[act]
        # The counter cannot outgrow the observable columns, so rows the
        # observed-packet bound rules out are skipped before any popcount.
        maybe = (counters + view.num_obs_cols >= gate) & (levels_act < num_layers)
        if not maybe.any():
            return None
        sync_sel = chunk.sync_cols[s_lo:s_hi]
        at_sync = chunk.sync_ok[s_lo:s_hi][:, levels_act].T
        running = view.prefix_counts_multi(sync_sel + 1)
        candidates = (
            view.bit_at(sync_sel)
            & at_sync
            & (counters[:, None] + running >= gate[:, None])
            & maybe[:, None]
        )
        first = candidates.argmax(axis=1)
        has_join = candidates[np.arange(act.size), first]
        if not has_join.any():
            return None
        return has_join, sync_sel[first]

    def scan_chain_gap(self, chunk, rows, levels_rows, gap_counts, gap_lo, gap_hi):
        # A coordinated join needs a sync point strictly inside the gap
        # (the bounds themselves are congestion columns, so a sync packet
        # there was lost and cannot trigger) plus enough receptions to
        # clear the gate, counting from the zeroed post-congestion state.
        # The count up to any interior sync point is bounded by the whole
        # gap's count, so the test is conservative: chains only break when
        # a join is at least plausible, never the other way around.
        sync_cols = chunk.sync_cols
        after = np.searchsorted(sync_cols, gap_lo, side="right")
        before = np.searchsorted(sync_cols, gap_hi, side="left")
        gate = self.sync_threshold_fraction * self.join_threshold(levels_rows)
        return (
            (after < before)
            & (gap_counts >= gate)
            & (levels_rows < chunk.num_layers)
        )

    def scan_chain_join_packed(
        self, chunk, words, base_col, rows, levels_rows, gap_counts, gap_lo, gap_hi
    ):
        # Exact counterpart of scan_chain_gap: with the counter zeroed by
        # the consumed event, a row joins at the first sync point strictly
        # inside its gap that it received, that admits its level, and
        # whose in-gap running reception count clears the gate.  Bits
        # below each row's position are already cleared, so the prefix
        # popcount at a sync point *is* the counter the per-packet rule
        # would hold there.
        no_join = np.zeros(rows.size, dtype=bool)
        sync_cols = chunk.sync_cols
        s_lo = int(sync_cols.searchsorted(int(gap_lo.min()), side="right"))
        s_hi = int(sync_cols.searchsorted(int(gap_hi.max()), side="left"))
        if s_lo == s_hi:
            return no_join, gap_hi, gap_counts
        # Rows without a sync point inside their own gap, without enough
        # gap receptions to clear the gate anywhere in it, or at the top
        # level cannot fire; typically only a few survive the prune into
        # the sync-matrix inspection below.
        gate = self.sync_threshold_fraction * self.join_threshold(levels_rows)
        maybe = (
            (sync_cols.searchsorted(gap_lo, side="right")
             < sync_cols.searchsorted(gap_hi, side="left"))
            & (gap_counts >= gate)
            & (levels_rows < chunk.num_layers)
        )
        if not maybe.any():
            return no_join, gap_hi, gap_counts
        midx = maybe.nonzero()[0]
        part = words[midx]
        gap_hi_m = gap_hi[midx]
        s_lo = int(sync_cols.searchsorted(int(gap_lo[midx].min()), side="right"))
        s_hi = int(sync_cols.searchsorted(int(gap_hi_m.max()), side="left"))
        sync_sel = sync_cols[s_lo:s_hi]
        levels_m = levels_rows[midx]
        running = bitpack.prefix_counts_multi(part, base_col, sync_sel + 1)
        candidates = (
            bitpack.bit_at(part, base_col, sync_sel)
            & chunk.sync_ok[s_lo:s_hi][:, levels_m].T
            & (sync_sel[None, :] < gap_hi_m[:, None])
            & (running >= gate[midx][:, None])
        )
        first = candidates.argmax(axis=1)
        iota = np.arange(midx.size)
        fired = candidates[iota, first]
        has_join = no_join
        has_join[midx] = fired
        col = gap_hi.copy()
        col[midx] = np.where(fired, sync_sel[first], gap_hi_m)
        bulk = gap_counts.copy()
        bulk[midx] = np.where(fired, running[iota, first], gap_counts[midx])
        return has_join, col, bulk
