"""The Coordinated protocol: sender-stamped, nested join opportunities.

"In the Coordinated protocol, the sender indicates (e.g., through a field
within its transmitted packet) when receivers should join an additional
layer.  This is done in such a way so that when the field indicates that
receivers joined up to layer i should join layer i+1, it also indicates that
receivers joined up to layer j < i should join layer j + 1."

The sender marks the layer-1 packet at the start of time unit ``u`` with a
join opportunity for every level ``i`` whose period ``2^(i-1)`` divides
``u`` (see :class:`repro.simulator.packets.PacketSchedule`); the nesting
requirement holds by construction.  A receiver at level ``i`` may join only
at a level-``i`` sync point, and only if it has accumulated enough loss-free
packets since its last join/leave event.

Calibration.  The paper requires all three protocols to share the same
expected probe interval: ``2^(2(i-1))`` packets received between a
join/leave event and the next join from level ``i``.  A level-``i`` receiver
receives ``2^(i-1)`` packets per time unit and level-``i`` sync points are
``2^(i-1)`` time units apart, so waiting for *half* the probe interval in
received packets and then for the next sync point gives exactly the required
expectation (half from the packet gate, half from the uniformly distributed
phase of the next sync point).  The gate fraction is configurable through
``sync_threshold_fraction``.

Because receivers at the same level share the same join instants, their
subscriptions move up in lock-step and the shared link rarely carries layers
wanted by only a few receivers — the mechanism that keeps redundancy lowest
among the three protocols in Figure 8.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from ..errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
from .base import LayeredProtocol

__all__ = ["CoordinatedProtocol"]


class CoordinatedProtocol(LayeredProtocol):
    """Joins only at sender-coordinated sync points, gated on loss-free progress."""

    name = "coordinated"

    def __init__(self, sync_threshold_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= sync_threshold_fraction <= 1.0:
            raise ProtocolError(
                "sync_threshold_fraction must lie in [0, 1], got "
                f"{sync_threshold_fraction}"
            )
        self.sync_threshold_fraction = float(sync_threshold_fraction)

    def _reset_state(self) -> None:
        # Loss-free packets received since the last join/leave event.
        self._received_since_event = np.zeros(self.num_receivers, dtype=np.int64)

    def on_congestion(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: Packet,
    ) -> np.ndarray:
        self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        self._received_since_event[received] += 1
        if not packet.sync_levels:
            return np.zeros_like(received)
        sync_levels = np.asarray(packet.sync_levels, dtype=levels.dtype)
        at_sync_level = np.isin(levels, sync_levels)
        gate = self.sync_threshold_fraction * self.join_threshold(levels)
        ready = self._received_since_event >= gate
        return received & at_sync_level & ready

    def on_join(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        self._received_since_event[receivers] = 0

    @property
    def received_since_event(self) -> np.ndarray:
        """Per-receiver count of loss-free packets since the last join/leave event."""
        return self._received_since_event.copy()
