"""Section-4 layered congestion-control protocols and their analysis models.

Three receiver-driven protocols differing only in join coordination:

* :class:`~repro.protocols.uncoordinated.UncoordinatedProtocol` — random
  per-packet join decisions;
* :class:`~repro.protocols.deterministic.DeterministicProtocol` — join after
  a fixed count of loss-free packets;
* :class:`~repro.protocols.coordinated.CoordinatedProtocol` — joins only at
  sender-stamped, nested sync points.

:class:`~repro.protocols.active.ActiveNodeProtocol` implements the Section-5
extension in which the branch-point router coordinates the whole group, and
:mod:`~repro.protocols.markov` provides the two-receiver Markov analysis
model of Figure 7(a).
"""

from .active import ActiveNodeProtocol
from .base import LayeredProtocol, join_threshold_packets
from .coordinated import CoordinatedProtocol
from .deterministic import DeterministicProtocol
from .markov import MarkovAnalysisResult, TwoReceiverMarkovModel, redundancy_vs_loss_split
from .uncoordinated import UncoordinatedProtocol

#: Factory mapping used by experiments and benchmarks.  The first three are
#: the paper's Section-4 protocols; "active-node" is the Section-5 extension.
PROTOCOL_FACTORIES = {
    "uncoordinated": UncoordinatedProtocol,
    "deterministic": DeterministicProtocol,
    "coordinated": CoordinatedProtocol,
    "active-node": ActiveNodeProtocol,
}


def make_protocol(name: str) -> LayeredProtocol:
    """Instantiate a protocol by name.

    Valid names are ``uncoordinated``, ``deterministic``, ``coordinated``
    (the paper's Section-4 protocols), and ``active-node`` (the Section-5
    in-network coordination extension).
    """
    key = name.lower()
    if key not in PROTOCOL_FACTORIES:
        raise KeyError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOL_FACTORIES)}"
        )
    return PROTOCOL_FACTORIES[key]()


__all__ = [
    "ActiveNodeProtocol",
    "LayeredProtocol",
    "join_threshold_packets",
    "CoordinatedProtocol",
    "DeterministicProtocol",
    "UncoordinatedProtocol",
    "MarkovAnalysisResult",
    "TwoReceiverMarkovModel",
    "redundancy_vs_loss_split",
    "PROTOCOL_FACTORIES",
    "make_protocol",
]
