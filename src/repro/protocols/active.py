"""Active-node coordination — the Section 5 "future work" protocol.

The paper closes by suggesting that "placing the decision to add and drop
layers at the active nodes, rather than at receivers, should increase the
coordination of the joins and leaves of layers by downstream receivers,
thereby reducing redundancy.  Such an approach would make a redundancy of
one feasible for a layered multi-rate session."

:class:`ActiveNodeProtocol` models that idea on the modified-star topology:
the branch-point router (the "active node" at the hub) manages a *single*
group subscription on the shared link on behalf of all downstream receivers:

* the group drops a layer when the active node observes congestion on the
  shared link — identified as a congestion event seen by (nearly) every
  subscribed receiver at once, controlled by ``group_loss_fraction``;
* isolated fan-out losses affect only the unlucky receiver's goodput; the
  active node does not react to them (in a deployment it could repair them
  locally), so they no longer desynchronise the group;
* the group joins one layer at the sender's nested sync points once enough
  packets have been forwarded since the group's last join/leave event, using
  the same ``2^(2(i-1))``-packet calibration as the receiver-driven
  protocols.

Because every receiver always holds the same subscription, the shared link
carries exactly what the fastest receiver consumes and the measured
redundancy approaches ``1 / (1 - loss)`` — i.e. essentially one, which is the
feasibility claim this extension exists to check (see the active-node
ablation experiment and benchmark).
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from ..errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
from .base import LayeredProtocol

__all__ = ["ActiveNodeProtocol"]


class ActiveNodeProtocol(LayeredProtocol):
    """Group-wide joins and leaves decided at the branch-point router."""

    name = "active-node"

    def __init__(
        self,
        sync_threshold_fraction: float = 0.5,
        group_loss_fraction: float = 0.75,
    ) -> None:
        super().__init__()
        if not 0.0 <= sync_threshold_fraction <= 1.0:
            raise ProtocolError(
                "sync_threshold_fraction must lie in [0, 1], got "
                f"{sync_threshold_fraction}"
            )
        if not 0.0 < group_loss_fraction <= 1.0:
            raise ProtocolError(
                f"group_loss_fraction must lie in (0, 1], got {group_loss_fraction}"
            )
        self.sync_threshold_fraction = float(sync_threshold_fraction)
        self.group_loss_fraction = float(group_loss_fraction)

    def _reset_state(self) -> None:
        # Packets forwarded by the active node since the group's last
        # join/leave event.
        self._packets_since_group_event = 0

    # ------------------------------------------------------------------
    # leave side: only shared-link congestion moves the group
    # ------------------------------------------------------------------
    def congestion_leaves(
        self,
        congested: np.ndarray,
        levels: np.ndarray,
        packet: "Packet",
    ) -> np.ndarray:
        subscribed = levels >= packet.layer
        subscribed_count = int(subscribed.sum())
        if subscribed_count == 0:
            return np.zeros_like(congested)
        affected = int((congested & subscribed).sum())
        if affected >= self.group_loss_fraction * subscribed_count:
            # Congestion on the shared link: the whole group backs off.
            self._packets_since_group_event = 0
            return np.ones_like(congested)
        # Isolated fan-out loss: the active node absorbs it.
        return np.zeros_like(congested)

    # ------------------------------------------------------------------
    # join side: group joins at the sender's sync points
    # ------------------------------------------------------------------
    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: "Packet",
    ) -> np.ndarray:
        self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        self._packets_since_group_event += 1
        if not packet.sync_levels:
            return np.zeros_like(received)
        group_level = int(levels.max())
        if group_level not in packet.sync_levels:
            return np.zeros_like(received)
        gate = self.sync_threshold_fraction * float(
            2.0 ** (2 * (group_level - 1))
        )
        if self._packets_since_group_event < gate:
            return np.zeros_like(received)
        # The whole group joins together (stragglers catch up too).
        return np.ones_like(received)

    def on_join(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        self._packets_since_group_event = 0

    @property
    def packets_since_group_event(self) -> int:
        """Packets forwarded since the group's last join/leave event."""
        return self._packets_since_group_event
