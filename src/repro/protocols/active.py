"""Active-node coordination — the Section 5 "future work" protocol.

The paper closes by suggesting that "placing the decision to add and drop
layers at the active nodes, rather than at receivers, should increase the
coordination of the joins and leaves of layers by downstream receivers,
thereby reducing redundancy.  Such an approach would make a redundancy of
one feasible for a layered multi-rate session."

:class:`ActiveNodeProtocol` models that idea on the modified-star topology:
the branch-point router (the "active node" at the hub) manages a *single*
group subscription on the shared link on behalf of all downstream receivers:

* the group drops a layer when the active node observes congestion on the
  shared link — identified as a congestion event seen by (nearly) every
  subscribed receiver at once, controlled by ``group_loss_fraction``;
* isolated fan-out losses affect only the unlucky receiver's goodput; the
  active node does not react to them (in a deployment it could repair them
  locally), so they no longer desynchronise the group;
* the group joins one layer at the sender's nested sync points once enough
  packets have been forwarded since the group's last join/leave event, using
  the same ``2^(2(i-1))``-packet calibration as the receiver-driven
  protocols.

Because every receiver always holds the same subscription, the shared link
carries exactly what the fastest receiver consumes and the measured
redundancy approaches ``1 / (1 - loss)`` — i.e. essentially one, which is the
feasibility claim this extension exists to check (see the active-node
ablation experiment and benchmark).
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from ..errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from ..simulator.packets import Packet
from .base import LayeredProtocol, join_threshold_packets

__all__ = ["ActiveNodeProtocol"]


class ActiveNodeProtocol(LayeredProtocol):
    """Group-wide joins and leaves decided at the branch-point router."""

    name = "active-node"
    supports_batched_units = True
    needs_dense_losses = True

    def __init__(
        self,
        sync_threshold_fraction: float = 0.5,
        group_loss_fraction: float = 0.75,
    ) -> None:
        super().__init__()
        if not 0.0 <= sync_threshold_fraction <= 1.0:
            raise ProtocolError(
                "sync_threshold_fraction must lie in [0, 1], got "
                f"{sync_threshold_fraction}"
            )
        if not 0.0 < group_loss_fraction <= 1.0:
            raise ProtocolError(
                f"group_loss_fraction must lie in (0, 1], got {group_loss_fraction}"
            )
        self.sync_threshold_fraction = float(sync_threshold_fraction)
        self.group_loss_fraction = float(group_loss_fraction)

    def _reset_state(self) -> None:
        super()._reset_state()
        # Packets forwarded by the active node since the group's last
        # join/leave event (group-scalar; the base per-receiver counter is
        # unused here).
        self._packets_since_group_event = 0

    # ------------------------------------------------------------------
    # leave side: only shared-link congestion moves the group
    # ------------------------------------------------------------------
    def congestion_leaves(
        self,
        congested: np.ndarray,
        levels: np.ndarray,
        packet: "Packet",
    ) -> np.ndarray:
        subscribed = levels >= packet.layer
        subscribed_count = int(subscribed.sum())
        if subscribed_count == 0:
            return np.zeros_like(congested)
        affected = int((congested & subscribed).sum())
        if affected >= self.group_loss_fraction * subscribed_count:
            # Congestion on the shared link: the whole group backs off.
            self._packets_since_group_event = 0
            return np.ones_like(congested)
        # Isolated fan-out loss: the active node absorbs it.
        return np.zeros_like(congested)

    # ------------------------------------------------------------------
    # join side: group joins at the sender's sync points
    # ------------------------------------------------------------------
    def on_packet_received(
        self,
        received: np.ndarray,
        levels: np.ndarray,
        packet: "Packet",
    ) -> np.ndarray:
        self._require_ready()
        if not received.any():
            return np.zeros_like(received)
        self._packets_since_group_event += 1
        if not packet.sync_levels:
            return np.zeros_like(received)
        group_level = int(levels.max())
        if group_level not in packet.sync_levels:
            return np.zeros_like(received)
        gate = self.sync_threshold_fraction * join_threshold_packets(group_level)
        if self._packets_since_group_event < gate:
            return np.zeros_like(received)
        # The whole group joins together (stragglers catch up too).
        return np.ones_like(received)

    def on_join(self, receivers: np.ndarray, levels: np.ndarray) -> None:
        self._packets_since_group_event = 0

    # ------------------------------------------------------------------
    # batched path: the group is a single scalar state machine
    # ------------------------------------------------------------------
    def step_chunk(self, chunk, levels):
        """Chunked scan specialised to the group's lock-step dynamics.

        Every receiver always holds the same subscription level (the group
        joins and leaves together from the all-ones initial state), so the
        protocol reduces to one scalar (level, counter) machine whose events
        are group congestions — shared-link losses, or fan-out loss bursts
        hitting at least ``group_loss_fraction`` of the group — plus group
        joins at the sender's sync points.  Receiver-level reception is
        still accounted per receiver for the rate measurements.
        """
        from .scan import ChunkResult

        num_receivers = levels.size
        top = chunk.num_layers
        layers = chunk.layers
        shared = chunk.shared_lost
        indep = chunk.independent_lost  # receiver-major (R, n)
        n = layers.size
        ind_count = indep.sum(axis=0, dtype=np.int64)
        # congested.any() / the group-leave condition / received.any(),
        # all conditional on the packet being subscribed at all.
        any_congestion = shared | (ind_count > 0)
        group_hit = shared | (ind_count >= self.group_loss_fraction * num_receivers)
        recv_any = ~shared & (ind_count < num_receivers)

        received = np.zeros(num_receivers, dtype=np.int64)
        ev_cols = []
        ev_old = []
        ev_new = []
        level = int(levels.max())
        count = self._packets_since_group_event
        sync_cols = chunk.sync_cols
        pos = 0
        while pos < n:
            cols = chunk.cols_for_level[level]
            observed = cols[cols >= pos] if pos else cols
            if observed.size == 0:
                break
            hits = observed[group_hit[observed]]
            next_event = int(hits[0]) if hits.size else n
            if level < top and sync_cols.size:
                ahead = np.searchsorted(sync_cols, pos)
                for index in range(ahead, sync_cols.size):
                    sync_col = int(sync_cols[index])
                    if sync_col >= next_event:
                        break
                    if not chunk.sync_ok[index, level] or not recv_any[sync_col]:
                        continue
                    gate = self.sync_threshold_fraction * join_threshold_packets(level)
                    upto = observed[observed <= sync_col]
                    if count + int(recv_any[upto].sum()) >= gate:
                        next_event = sync_col
                        break
            stretch = observed[observed < next_event]
            if stretch.size:
                alive = stretch[~shared[stretch]]
                if alive.size:
                    received += alive.size - indep[:, alive].sum(axis=1)
                count += int(recv_any[stretch].sum())
            if next_event >= n:
                break
            # Replicate the reference engine's per-packet order exactly at
            # the event packet: congestion reaction first, then reception.
            col = next_event
            if any_congestion[col]:
                if group_hit[col]:
                    count = 0
                    if level > 1:
                        ev_cols.append(col)
                        ev_old.append(level)
                        level -= 1
                        ev_new.append(level)
            if recv_any[col]:
                received += 1 - indep[:, col]
                count += 1
                sync_index = np.searchsorted(sync_cols, col)
                if (
                    sync_index < sync_cols.size
                    and sync_cols[sync_index] == col
                    and chunk.sync_ok[sync_index, level]
                    and level < top
                    and count >= self.sync_threshold_fraction * join_threshold_packets(level)
                ):
                    ev_cols.append(col)
                    ev_old.append(level)
                    level += 1
                    ev_new.append(level)
                    count = 0
            pos = col + 1

        self._packets_since_group_event = count
        levels[:] = level
        if ev_cols:
            event_cols = np.repeat(np.asarray(ev_cols, dtype=np.int64), num_receivers)
            event_receivers = np.tile(np.arange(num_receivers), len(ev_cols))
            event_old = np.repeat(np.asarray(ev_old, dtype=np.int64), num_receivers)
            event_new = np.repeat(np.asarray(ev_new, dtype=np.int64), num_receivers)
        else:
            event_cols = np.zeros(0, dtype=np.int64)
            event_receivers = np.zeros(0, dtype=np.int64)
            event_old = np.zeros(0, dtype=np.int64)
            event_new = np.zeros(0, dtype=np.int64)
        return ChunkResult(
            received=received,
            event_cols=event_cols,
            event_receivers=event_receivers,
            event_old_levels=event_old,
            event_new_levels=event_new,
        )

    @property
    def packets_since_group_event(self) -> int:
        """Packets forwarded since the group's last join/leave event."""
        return self._packets_since_group_event
