"""Backend-neutral scan kernel: one protocol decision sequence, N lowerings.

The Section-4 protocol semantics — candidate congestion selection,
credit/bulk-reception accounting, join/leave transitions, segment refresh,
window close — used to be encoded three times over: in the per-packet
reference loop, the dense batched scan and the bit-packed chain drain.
This module extracts the protocol-visible decision sequence into one
place, split along a representation boundary:

* :class:`ScanKernel` owns the *semantics*: event ordering (the
  first-event rule), the level-step invariants (a leave only below the
  floor, a join only below the window top), credit accounting, the hook
  dispatch order (``scan_bulk_received`` before ``scan_congested`` /
  ``scan_joined`` / ``scan_left``) and the event record layout the
  simulator engine reconstructs carriage from.  Both scan lowerings and
  the per-packet reference loop drive their transitions through it, so
  the conformance suite checks one semantics instead of three
  implementations.
* :class:`BackendOps` subclasses own the *representation*: how a window's
  reception/congestion state is stored and reduced.  :class:`DenseOps`
  uses boolean receiver-major matrices (``argmax`` first-hits, masked
  ``sum`` counts); :class:`PackedOps` uses ``uint64`` words with masked
  popcounts (:mod:`repro.protocols.bitpack`);
  :class:`~repro.protocols.compiled.CompiledOps` re-lowers the packed
  primitives as Numba-jitted single-pass loops.  A backend supplies only
  these primitives — adding one is a lowering exercise, not a protocol
  reimplementation.

The engine registry (:data:`ENGINES`) lives here too, as the single
source of truth for the simulator, the experiment API and the CLI.

Adding a backend
----------------
1. Subclass :class:`PackedOps` (or :class:`DenseOps`) and override the
   primitives you can lower better — every override must be bit-exact
   (same columns, same counts) because the kernel's event sequence is
   pinned across engines by ``tests/simulator/test_engine_equivalence.py``
   and the differential fuzzer.
2. Register the engine name in :data:`ENGINES` (and :data:`PACKED_ENGINES`
   or :data:`SCAN_ENGINES` as appropriate) and teach
   :func:`backend_ops_for` to build your ops object.
3. Nothing else: the scan, the protocols, the experiment API and the CLI
   all read the registry, and the conformance matrix picks the new name
   up automatically.
"""

from __future__ import annotations

import importlib.util

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from . import bitpack

if TYPE_CHECKING:  # pragma: no cover - import only for type annotations
    from .base import LayeredProtocol

__all__ = [
    "ENGINES",
    "PACKED_ENGINES",
    "SCAN_ENGINES",
    "BackendOps",
    "ChunkResult",
    "DenseOps",
    "DENSE_OPS",
    "KernelTrace",
    "PackedOps",
    "PACKED_OPS",
    "ScanKernel",
    "backend_ops_for",
    "have_numba",
]

#: Every selectable simulation engine, fastest default first.  The single
#: source of truth: the simulator validates against it, the experiment
#: API's spec validation imports it, and the CLI builds ``--engine``
#: choices from it.
ENGINES: Tuple[str, ...] = ("bitpacked", "batched", "reference", "compiled")

#: Engines that run the chunked event scan (everything but the per-packet
#: reference loop).
SCAN_ENGINES: Tuple[str, ...] = ("bitpacked", "batched", "compiled")

#: Scan engines whose chunks carry bit-packed matrices.
PACKED_ENGINES: Tuple[str, ...] = ("bitpacked", "compiled")

_HAVE_NUMBA: Optional[bool] = None


def have_numba() -> bool:
    """Whether the optional :mod:`numba` dependency is importable."""
    global _HAVE_NUMBA
    if _HAVE_NUMBA is None:
        _HAVE_NUMBA = importlib.util.find_spec("numba") is not None
    return _HAVE_NUMBA


@dataclass
class ChunkResult:
    """What one chunk of simulation did to the session.

    ``received`` counts packets received per receiver over the chunk.  The
    ``event_*`` arrays record every subscription-level change (one entry per
    receiver per change, in increasing packet order per receiver): the
    packet column it happened at, the receiver, and the levels before/after
    — enough for the engine to reconstruct per-packet carriage and
    leave-latency advertisements without re-simulating.
    """

    received: np.ndarray
    event_cols: np.ndarray
    event_receivers: np.ndarray
    event_old_levels: np.ndarray
    event_new_levels: np.ndarray

    @property
    def num_events(self) -> int:
        return int(self.event_cols.size)


def _concat(parts: List[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=np.int64)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


class KernelTrace:
    """Recording instrument for the kernel's protocol-visible decisions.

    Attach one to a protocol as ``protocol.kernel_trace`` and every
    :class:`ScanKernel` the protocol passes through records the ordered
    sequence of kernel events — (receiver, absolute packet column, kind,
    level before/after, cumulative receptions at record time) — plus the
    running per-receiver reception credit.  The hook-trace equivalence
    suite (``tests/protocols/test_kernel_trace.py``) asserts all backends
    emit the *identical ordered event sequence*, not just identical final
    payloads.

    Credits are compared only cumulatively (the per-call bulk granularity
    legitimately differs between a per-packet loop and a windowed scan);
    the cumulative count at each event record is backend-invariant.
    """

    def __init__(self, num_receivers: int) -> None:
        self.cum = np.zeros(num_receivers, dtype=np.int64)
        self.events: List[tuple] = []

    def credit(self, rows, counts) -> None:
        np.add.at(self.cum, rows, counts)

    def event(self, rows, cols, kind: str, old, new) -> None:
        rows = np.atleast_1d(np.asarray(rows))
        cols = np.broadcast_to(np.asarray(cols), rows.shape)
        old = np.broadcast_to(np.asarray(old), rows.shape)
        new = np.broadcast_to(np.asarray(new), rows.shape)
        for i in range(rows.size):
            r = int(rows[i])
            self.events.append(
                (r, int(cols[i]), kind, int(old[i]), int(new[i]), int(self.cum[r]))
            )

    def per_receiver(self) -> dict:
        """Events grouped per receiver, ordered by packet column."""
        grouped: dict = {}
        for ev in sorted(self.events, key=lambda e: (e[0], e[1])):
            grouped.setdefault(ev[0], []).append(ev[1:])
        return grouped


class ScanKernel:
    """The backend-neutral protocol decision sequence for one chunk.

    One instance advances one chunk: it owns the received-packet credit
    array, the level-change event records, the hook dispatch order and the
    level-step invariants.  The scan lowerings
    (:func:`repro.protocols.scan.scan_chunk` and
    :func:`~repro.protocols.scan.scan_chunk_bitpacked`) call
    :meth:`credit` / :meth:`congest` / :meth:`join` at each drained event;
    the per-packet reference loop drives the same transitions through
    :meth:`packet_congested` / :meth:`apply_leaves` /
    :meth:`packet_received` / :meth:`apply_joins`.  ``levels`` is mutated
    in place (it is the caller's state array).
    """

    def __init__(
        self,
        protocol: "LayeredProtocol",
        levels: np.ndarray,
        num_receivers: int,
        col_offset: int = 0,
    ) -> None:
        self.protocol = protocol
        self.levels = levels
        self.received = np.zeros(num_receivers, dtype=np.int64)
        self.col_offset = col_offset
        self.trace: Optional[KernelTrace] = getattr(protocol, "kernel_trace", None)
        self._ev_cols: List[np.ndarray] = []
        self._ev_rec: List[np.ndarray] = []
        self._ev_old: List[np.ndarray] = []
        self._ev_new: List[np.ndarray] = []

    # ---- the first-event rule ------------------------------------------
    @staticmethod
    def first_event(has_cong, e_cong, has_join, e_join) -> np.ndarray:
        """Which rows' first event is the congestion candidate.

        Congestion and join columns are disjoint per receiver, so the
        earlier of the two (when both exist) is the true first event.
        """
        return has_cong & (~has_join | (e_cong < e_join))

    # ---- scan-side transitions -----------------------------------------
    def credit(self, rows, counts, hook_counts=None) -> None:
        """Credit bulk receptions and mirror them to the protocol.

        ``hook_counts`` lets a lowering whose ``counts`` already include a
        join-triggering packet report the strictly-before bulk to the
        protocol hook (the join packet's own credit reaches the protocol
        through ``scan_joined`` semantics instead).
        """
        self.received[rows] += counts
        self.protocol.scan_bulk_received(
            rows, counts if hook_counts is None else hook_counts
        )
        if self.trace is not None:
            self.trace.credit(rows, counts)

    def congest(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Apply a congestion signal at ``cols[i]`` to receiver ``rows[i]``.

        Hook order and the leave invariant (never below level 1) are owned
        here: ``scan_congested`` for every signalled row, then the level
        step and ``scan_left`` for the rows above the floor.
        """
        if rows.size == 0:
            return
        levels = self.levels
        self.protocol.scan_congested(rows)
        leave = levels[rows] > 1
        lidx = rows[leave]
        if self.trace is not None:
            old = levels[rows]
            self.trace.event(
                rows, cols.astype(np.int64, copy=False) + self.col_offset,
                "congest", old, old - leave,
            )
        if lidx.size:
            self._ev_cols.append(cols[leave].astype(np.int64, copy=False))
            self._ev_rec.append(lidx)
            self._ev_old.append(levels[lidx])
            levels[lidx] -= 1
            self._ev_new.append(levels[lidx])
            self.protocol.scan_left(lidx, levels[lidx])

    def join(self, rows: np.ndarray, cols: np.ndarray, top: int,
             credit_join: bool = False) -> int:
        """Apply a join at ``cols[i]`` to receiver ``rows[i]``.

        ``credit_join`` additionally credits the join-triggering packet
        itself (the dense lowering's bulk counts are strictly-before; the
        packed lowerings fold the join bit into the bulk credit).  Returns
        the earliest column whose join outgrew ``top`` (the window's layer
        slice) — the caller must truncate its window there — or ``-1``.
        """
        if rows.size == 0:
            return -1
        levels = self.levels
        if credit_join:
            self.received[rows] += 1
            if self.trace is not None:
                self.trace.credit(rows, 1)
        self.protocol.scan_joined(rows, levels[rows] + 1)
        jcols = cols.astype(np.int64, copy=False)
        self._ev_cols.append(jcols)
        self._ev_rec.append(rows)
        old = levels[rows]
        self._ev_old.append(old)
        levels[rows] += 1
        new = levels[rows]
        self._ev_new.append(new)
        if self.trace is not None:
            self.trace.event(rows, jcols + self.col_offset, "join", old, new)
        raised = new > top
        if raised.any():
            return int(jcols[raised].min())
        return -1

    def result(self) -> ChunkResult:
        """The chunk's credit totals and level-change event records."""
        return ChunkResult(
            received=self.received,
            event_cols=_concat(self._ev_cols),
            event_receivers=_concat(self._ev_rec),
            event_old_levels=_concat(self._ev_old),
            event_new_levels=_concat(self._ev_new),
        )

    # ---- per-packet (reference-loop) transitions ------------------------
    def packet_congested(self, congested: np.ndarray, col: int,
                         packet) -> np.ndarray:
        """One packet's congestion step: hooks plus the leave invariant.

        Returns the leaver mask (the protocol's reaction clamped above the
        level floor); the caller applies engine-side bookkeeping (leave
        advertisements) before :meth:`apply_leaves`.
        """
        protocol = self.protocol
        levels = self.levels
        protocol.on_congestion(congested, levels)
        leavers = protocol.congestion_leaves(congested, levels, packet)
        leavers = leavers & (levels > 1)
        if self.trace is not None:
            rows = congested.nonzero()[0]
            old = levels[rows]
            self.trace.event(rows, col, "congest", old, old - leavers[rows])
        return leavers

    def apply_leaves(self, leavers: np.ndarray) -> None:
        np.subtract(self.levels, 1, out=self.levels, where=leavers)
        self.protocol.on_leave(leavers, self.levels)

    def packet_received(self, receiving: np.ndarray, col: int, top: int,
                        packet) -> np.ndarray:
        """One packet's reception step: credit, hooks, the join invariant.

        Returns the joiner mask (the protocol's join decision clamped
        below the layer top ``top``).
        """
        protocol = self.protocol
        levels = self.levels
        if self.trace is not None:
            self.trace.credit(receiving.nonzero()[0], 1)
        joins = protocol.on_packet_received(receiving, levels, packet)
        joins = joins & (levels < top)
        if self.trace is not None and joins.any():
            rows = joins.nonzero()[0]
            old = levels[rows]
            self.trace.event(rows, col, "join", old, old + 1)
        return joins

    def apply_joins(self, joins: np.ndarray) -> None:
        np.add(self.levels, 1, out=self.levels, where=joins)
        self.protocol.on_join(joins, self.levels)


class BackendOps:
    """Data-representation primitives one engine lowers the kernel with.

    The kernel is representation-blind: everything it needs from a
    backend is "find the first event candidate", "count receptions in a
    range" and "rebuild a row's window state" — the narrow surfaces below.
    Subclasses must be *bit-exact* (same columns, same counts) because the
    cross-engine conformance matrix pins the kernel's event sequence.
    """

    #: Representation family: ``"dense"`` boolean matrices or ``"packed"``
    #: uint64 words.
    kind = "abstract"


class DenseOps(BackendOps):
    """Dense boolean receiver-major matrices (``engine="batched"``)."""

    kind = "dense"

    @staticmethod
    def first_true(matrix: np.ndarray):
        """First true column per row: ``(has, window_index)``."""
        idx = matrix.argmax(axis=1)
        has = matrix[np.arange(matrix.shape[0]), idx]
        return has, idx

    @staticmethod
    def row_counts(matrix: np.ndarray) -> np.ndarray:
        """True cells per row (int64)."""
        return matrix.sum(axis=1, dtype=np.int64)

    @staticmethod
    def counts_before(rows_matrix: np.ndarray, iota: np.ndarray,
                      stops: np.ndarray) -> np.ndarray:
        """True cells per row at window indices strictly before ``stops``."""
        return (
            rows_matrix & (iota[None, :] < stops[:, None].astype(np.int32))
        ).sum(axis=1, dtype=np.int64)

    @staticmethod
    def range_counts(matrix: np.ndarray, cols: np.ndarray,
                     starts: np.ndarray, stop: int) -> np.ndarray:
        """True cells per row at columns in ``[starts[r], stop)``."""
        return (
            matrix
            & (cols[None, :] < np.int32(stop))
            & (cols[None, :] >= starts[:, None])
        ).sum(axis=1, dtype=np.int64)


class PackedOps(BackendOps):
    """uint64-packed words + popcount reductions (``engine="bitpacked"``).

    Thin delegation to :mod:`repro.protocols.bitpack`, plus two fused
    primitives (:meth:`gather_andnot_counts`, :meth:`chain_rebuild`) whose
    NumPy compositions are the packed drain's hottest temporaries — they
    are exactly what :class:`~repro.protocols.compiled.CompiledOps`
    re-lowers as single-pass jitted loops.
    """

    kind = "packed"

    word_base = staticmethod(bitpack.word_base)
    start_masks = staticmethod(bitpack.start_masks)
    tail_mask = staticmethod(bitpack.tail_mask)
    first_set = staticmethod(bitpack.first_set)
    row_counts = staticmethod(bitpack.row_counts)
    prefix_counts = staticmethod(bitpack.prefix_counts)
    counts_between = staticmethod(bitpack.counts_between)

    @staticmethod
    def gather_andnot_counts(recv: np.ndarray, hit: np.ndarray,
                             ahead: np.ndarray) -> np.ndarray:
        """Per hit row, count reception bits *not* selected by ``ahead``.

        The generation drain's consumed-bit credit: ``ahead`` masks the
        columns past each row's event, so the complement popcount is the
        receptions up to and including the event column.
        """
        consumed = recv[hit]
        consumed &= ~ahead
        return bitpack.row_counts(consumed)

    @staticmethod
    def chain_rebuild(
        masks_here: np.ndarray,
        w_off: int,
        levels_rows: np.ndarray,
        pos_rows: np.ndarray,
        edge_word: np.uint64,
        base_ws: int,
        bases_ws: np.ndarray,
        ok_rows: np.ndarray,
        recv_hit: np.ndarray,
        chain_l: np.ndarray,
        ws: int,
    ):
        """Rebuild chained rows' packed suffix after a consumed event.

        Recomputes each chained row's reception words at suffix word
        index ``ws`` onward — layer mask under the row's new level
        (``masks_here[level, w_off:]``), masked below the row's new
        position and at the window edge — writes them back into
        ``recv_hit`` in place, and returns the refreshed first-congestion
        candidate ``(has, col)`` for the chained rows.  ``ok_rows`` holds
        the chained rows' receivability suffix aligned with ``ws``.
        """
        num_words = recv_hit.shape[1] - ws
        front = bitpack.start_masks(pos_rows, base_ws, num_words, bases_ws)
        sub_c = masks_here[levels_rows, w_off:]
        sub_c &= front
        sub_c[:, -1] &= edge_word
        recv_c = sub_c & ok_rows
        cong_c = sub_c
        cong_c ^= recv_c
        recv_hit[chain_l, ws:] = recv_c
        return bitpack.first_set(cong_c, base_ws)


#: Shared backend singletons (the ops objects are stateless).
DENSE_OPS = DenseOps()
PACKED_OPS = PackedOps()


def backend_ops_for(engine: str) -> BackendOps:
    """The ops object an engine lowers the kernel with.

    ``engine="compiled"`` degrades gracefully: when :mod:`numba` is not
    installed the packed NumPy primitives serve in its place (bit-identical
    results, bitpacked speed), so specs naming the compiled engine stay
    runnable everywhere.
    """
    if engine in ("batched", "reference"):
        return DENSE_OPS
    if engine == "bitpacked":
        return PACKED_OPS
    if engine == "compiled":
        try:
            from .compiled import COMPILED_OPS
            return COMPILED_OPS
        except ImportError:
            return PACKED_OPS
    raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
