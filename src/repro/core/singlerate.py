"""Single-rate multicast max-min fairness (the Tzeng & Siu baseline).

The paper contrasts multi-rate max-min fairness with the earlier single-rate
definition of Tzeng and Siu, under which every receiver of a multicast
session must receive at the session's single rate, so the session consumes
that rate on *every* link of its multicast tree.

For single-rate networks the session-rate-based definition and the paper's
receiver-rate-based definition coincide (Section 2), so the general
Appendix-A construction with all sessions declared single-rate yields the
same allocation.  This module provides a direct session-level
progressive-filling implementation so the two can be cross-validated, and a
convenience helper that forces a network's sessions to single-rate before
solving.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from ..errors import FairnessComputationError
from ..network.network import Network
from .allocation import Allocation, DEFAULT_TOLERANCE

__all__ = ["single_rate_max_min_fair", "single_rate_session_rates"]


def single_rate_session_rates(
    network: Network,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[int, float]:
    """Max-min fair *session* rates when every session is treated as single-rate.

    The network's declared session types are ignored: every session is
    treated as single-rate, consuming its rate on every link of its multicast
    tree (the union of its receivers' data-paths).  Returns a mapping
    ``session_id -> rate``.
    """
    session_ids = [session.session_id for session in network.sessions]
    trees: Dict[int, Set[int]] = {
        i: set(network.session_data_path(i)) for i in session_ids
    }
    rho: Dict[int, float] = {i: network.session(i).max_rate for i in session_ids}

    rates: Dict[int, float] = {i: 0.0 for i in session_ids}
    frozen: Set[int] = set()
    remaining: Dict[int, float] = {
        link.link_id: link.capacity for link in network.graph.links
    }

    max_rounds = len(session_ids) + network.num_links + 4
    for _ in range(max_rounds):
        unfrozen = [i for i in session_ids if i not in frozen]
        if not unfrozen:
            break

        best_share = math.inf
        bottleneck: Optional[int] = None
        for link_id, capacity_left in remaining.items():
            users = [i for i in unfrozen if link_id in trees[i]]
            if not users:
                continue
            share = capacity_left / len(users)
            if share < best_share - tolerance:
                best_share = share
                bottleneck = link_id

        rho_headroom = {i: rho[i] - rates[i] for i in unfrozen}
        rho_limited = [i for i in unfrozen if rho_headroom[i] <= best_share + tolerance]
        if rho_limited:
            increment = max(min(rho_headroom[i] for i in rho_limited), 0.0)
            _apply_increment(unfrozen, increment, rates, trees, remaining)
            for i in unfrozen:
                if math.isfinite(rho[i]) and rho[i] - rates[i] <= tolerance * max(1.0, rho[i]):
                    frozen.add(i)
            continue

        if bottleneck is None:
            raise FairnessComputationError(
                "no bottleneck found for unfrozen single-rate sessions"
            )

        increment = max(best_share, 0.0)
        _apply_increment(unfrozen, increment, rates, trees, remaining)
        for link_id, capacity_left in remaining.items():
            if capacity_left <= tolerance:
                for i in unfrozen:
                    if link_id in trees[i]:
                        frozen.add(i)
    else:
        raise FairnessComputationError(
            "single-rate progressive filling did not converge"
        )

    return rates


def single_rate_max_min_fair(
    network: Network,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Allocation:
    """The single-rate max-min fair allocation of receiver rates.

    Every session is treated as single-rate; each receiver's rate equals its
    session's rate.  The allocation is evaluated (link rates etc.) on the
    *given* network, so callers who want the session types to reflect the
    single-rate assumption should pass ``network.with_all_single_rate()``.
    """
    session_rates = single_rate_session_rates(network, tolerance)
    return Allocation.from_session_rates(network, session_rates)


def _apply_increment(
    unfrozen: List[int],
    increment: float,
    rates: Dict[int, float],
    trees: Dict[int, Set[int]],
    remaining: Dict[int, float],
) -> None:
    if increment <= 0:
        return
    for i in unfrozen:
        rates[i] += increment
        for link_id in trees[i]:
            remaining[link_id] -= increment
