"""Core contribution: multi-rate multicast max-min fairness.

This subpackage implements the paper's primary machinery:

* :class:`~repro.core.allocation.Allocation` — receiver-rate allocations and
  the session/link rates they induce;
* :mod:`~repro.core.feasibility` — feasibility checks (Section 2);
* :func:`~repro.core.maxmin.max_min_fair_allocation` — the Appendix-A
  water-filling construction for arbitrary session-type mappings ``sigma``
  and arbitrary link-rate functions ``v_i``;
* :mod:`~repro.core.unicast` / :mod:`~repro.core.singlerate` — the classic
  unicast and single-rate (Tzeng–Siu style) baselines;
* :mod:`~repro.core.properties` — the four desirable fairness properties;
* :mod:`~repro.core.ordering` — the min-unfavorability ordering ``<=_m``;
* :mod:`~repro.core.redundancy` — link-rate functions ``v_i`` and the
  redundancy metric of Section 3.
"""

from .allocation import DEFAULT_TOLERANCE, Allocation
from .feasibility import (
    FeasibilityReport,
    FeasibilityViolation,
    assert_feasible,
    check_feasibility,
    is_feasible,
)
from .maxmin import MaxMinStep, MaxMinTrace, max_min_fair_allocation
from .ordering import (
    compare_allocations,
    compare_ordered_vectors,
    count_at_or_below,
    is_ordered,
    lemma2_threshold,
    min_unfavorable,
    ordered_vector,
    strictly_min_unfavorable,
)
from .properties import (
    PROPERTY_CHECKERS,
    PropertyReport,
    PropertyViolation,
    check_all_properties,
    fully_utilized_receiver_fairness,
    per_receiver_link_fairness,
    per_session_link_fairness,
    same_path_receiver_fairness,
)
from .redundancy import (
    bottleneck_fair_rate,
    constant_redundancy,
    efficient_link_rate,
    link_redundancy,
    normalized_fair_rate,
    random_join_link_rate,
    session_redundancy_bound,
)
from .singlerate import single_rate_max_min_fair, single_rate_session_rates
from .unicast import unicast_max_min_fair
from .weighted import (
    normalized_rate_vector,
    rtt_weights,
    validate_weights,
    weighted_max_min_fair_allocation,
    weighted_same_path_receiver_fairness,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "Allocation",
    "FeasibilityReport",
    "FeasibilityViolation",
    "assert_feasible",
    "check_feasibility",
    "is_feasible",
    "MaxMinStep",
    "MaxMinTrace",
    "max_min_fair_allocation",
    "compare_allocations",
    "compare_ordered_vectors",
    "count_at_or_below",
    "is_ordered",
    "lemma2_threshold",
    "min_unfavorable",
    "ordered_vector",
    "strictly_min_unfavorable",
    "PROPERTY_CHECKERS",
    "PropertyReport",
    "PropertyViolation",
    "check_all_properties",
    "fully_utilized_receiver_fairness",
    "per_receiver_link_fairness",
    "per_session_link_fairness",
    "same_path_receiver_fairness",
    "bottleneck_fair_rate",
    "constant_redundancy",
    "efficient_link_rate",
    "link_redundancy",
    "normalized_fair_rate",
    "random_join_link_rate",
    "session_redundancy_bound",
    "single_rate_max_min_fair",
    "single_rate_session_rates",
    "unicast_max_min_fair",
    "normalized_rate_vector",
    "rtt_weights",
    "validate_weights",
    "weighted_max_min_fair_allocation",
    "weighted_same_path_receiver_fairness",
]
