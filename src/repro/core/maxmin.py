"""Max-min fair allocation construction (Appendix A of the paper).

The paper's construction algorithm water-fills receiver rates: starting from
zero, the rates of all "active" receivers are raised uniformly as far as
feasibility allows; a receiver becomes inactive (its rate is frozen) once

* it reaches its session's maximum desired rate ``rho_i``, or
* some link on its data-path becomes fully utilised, or
* it belongs to a single-rate session in which another receiver has been
  frozen (keeping all rates of the session identical).

The construction works for any session-type mapping ``sigma`` (mixes of
single-rate, multi-rate, and unicast sessions) and — following Section 3.1 —
for arbitrary monotone session link-rate functions ``v_i`` with
``v_i(X) >= max(X)``, which is how redundancy enters the fair allocation
(Lemma 4, Figures 4 and 6).

The resulting allocation is the unique max-min fair allocation for the
network (Lemma 5 / Corollary 5 of the technical report); tests verify
max-min fairness directly against the definition on randomised networks.

Two interchangeable engines implement the construction:

* ``method="vectorized"`` (the default) — NumPy state machine over the
  network's cached :class:`~repro.network.incidence.NetworkIncidence`
  structures.  Link loads are maintained *incrementally*: every linear
  ``(session, link)`` pair contributes ``factor * level`` through a per-link
  slope while it has active receivers, and is folded into a constant
  per-link frozen load exactly once, when its last downstream receiver
  freezes.  Only links touched by newly-frozen receivers are updated.
  Sessions whose link-rate function does not advertise a linear
  ``redundancy_factor`` fall back to per-link bisection, exactly as in the
  reference engine.
* ``method="reference"`` — the original dict/set implementation, kept as an
  executable specification.  Randomised equivalence tests assert that both
  engines produce the same allocations and the same freeze order (see
  ``tests/core/test_maxmin_equivalence.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..errors import FairnessComputationError
from ..network.network import LinkRateFunction, Network
from ..network.session import ReceiverId
from .allocation import Allocation, DEFAULT_TOLERANCE
from .redundancy import efficient_link_rate

__all__ = ["max_min_fair_allocation", "MaxMinTrace", "MaxMinStep", "WATER_FILL_METHODS"]

#: Valid values of the ``method`` argument of :func:`max_min_fair_allocation`.
WATER_FILL_METHODS = ("vectorized", "reference")

#: Below this problem size (receivers + links + pairs) the ``vectorized``
#: method runs its scalar twin: NumPy's per-operation overhead exceeds the
#: cost of plain-float loops on such small index sets.  Chosen empirically
#: on the ``test_bench_water_filling_scaling`` workloads.
_SCALAR_ENGINE_CUTOFF = 1200

#: When True (the default) the vectorised engine resolves all non-linear
#: links of a water-filling round with one batched bisection
#: (:meth:`_VectorizedWaterFillState._bisect_links_batched`) instead of a
#: sequential per-link Python loop.  Flip for the equivalence test in
#: ``tests/core/test_maxmin_equivalence.py`` only.
_BATCHED_BISECTION = True


@dataclass(frozen=True)
class MaxMinStep:
    """One iteration of the water-filling construction (for tracing/debugging)."""

    level: float
    increment: float
    frozen_receivers: Tuple[ReceiverId, ...]
    saturated_links: Tuple[int, ...]


@dataclass
class MaxMinTrace:
    """Optional record of the water-filling iterations."""

    steps: List[MaxMinStep] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.steps)


def max_min_fair_allocation(
    network: Network,
    link_rate_functions: Optional[Mapping[int, LinkRateFunction]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    trace: Optional[MaxMinTrace] = None,
    method: str = "vectorized",
) -> Allocation:
    """Compute the max-min fair allocation of receiver rates for a network.

    Parameters
    ----------
    network:
        The network (graph, sessions with types and ``rho_i``, routing).
    link_rate_functions:
        Optional per-session link-rate functions ``v_i`` overriding the
        network's own functions; sessions without a function use the
        efficient link rate ``max``.
    tolerance:
        Numerical tolerance used for saturation and ``rho`` tests.
    trace:
        When supplied, the water-filling steps are appended to it.
    method:
        ``"vectorized"`` (default) for the NumPy engine or ``"reference"``
        for the original dict/set implementation (see module docstring).

    Returns
    -------
    Allocation
        The (unique) max-min fair allocation, evaluated under the same
        link-rate functions.
    """
    if method not in WATER_FILL_METHODS:
        raise ValueError(
            f"unknown water-filling method {method!r}; expected one of {WATER_FILL_METHODS}"
        )
    functions: Dict[int, LinkRateFunction] = dict(network.link_rate_functions)
    if link_rate_functions:
        functions.update(link_rate_functions)

    if method == "vectorized":
        # NumPy per-operation dispatch overhead dominates on small problems,
        # so the vectorised engine has a scalar twin over the same incidence
        # structures; both use identical incremental-update logic.
        incidence = network.incidence()
        problem_size = (
            incidence.num_receivers + incidence.num_links + incidence.num_pairs
        )
        if problem_size <= _SCALAR_ENGINE_CUTOFF:
            state: "_WaterFillEngine" = _ScalarWaterFillState(
                network, functions, tolerance
            )
        else:
            state = _VectorizedWaterFillState(network, functions, tolerance)
    else:
        state = _WaterFillState(network, functions, tolerance)

    iteration_limit = 4 * (network.num_receivers + network.num_links) + 16
    iterations = 0
    while state.has_active:
        iterations += 1
        if iterations > iteration_limit:
            raise FairnessComputationError(
                "water-filling did not converge within "
                f"{iteration_limit} iterations (numerical issue?)"
            )
        increment = state.compute_increment()
        state.apply_increment(increment)
        frozen, saturated = state.freeze_receivers()
        if trace is not None:
            trace.steps.append(
                MaxMinStep(
                    level=state.level,
                    increment=increment,
                    frozen_receivers=tuple(sorted(frozen)),
                    saturated_links=tuple(sorted(saturated)),
                )
            )
        if not frozen and increment <= tolerance:
            raise FairnessComputationError(
                "water-filling stalled: no progress and no receiver frozen"
            )

    return Allocation(network, state.final_rates(), functions)


def _bisect_increment(rate_at, level: float, capacity: float, upper: float) -> float:
    """Largest increment keeping ``rate_at(level + d) <= capacity`` for d in [0, upper].

    Shared by all engines (reference, NumPy, scalar) so the bisection
    semantics cannot drift between them; ``rate_at`` evaluates one link's
    rate at a hypothetical active-receiver level.
    """
    if upper <= 0:
        return 0.0
    if rate_at(level + upper) <= capacity:
        return upper
    lo, hi = 0.0, upper
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if rate_at(level + mid) <= capacity:
            lo = mid
        else:
            hi = mid
    return lo


class _WaterFillEngine:
    """Protocol shared by the two water-filling state machines."""

    level: float

    @property
    def has_active(self) -> bool:
        raise NotImplementedError

    def compute_increment(self) -> float:
        raise NotImplementedError

    def apply_increment(self, increment: float) -> None:
        raise NotImplementedError

    def freeze_receivers(self) -> Tuple[Set[ReceiverId], Set[int]]:
        raise NotImplementedError

    def final_rates(self) -> Dict[ReceiverId, float]:
        raise NotImplementedError


class _WaterFillState(_WaterFillEngine):
    """Reference (dict/set) state of the Appendix-A water-filling construction.

    Invariant: all active receivers share the same current rate
    (``self.level``); frozen receivers keep the rate at which they were
    frozen, which never exceeds the current level.
    """

    def __init__(
        self,
        network: Network,
        functions: Mapping[int, LinkRateFunction],
        tolerance: float,
    ) -> None:
        self.network = network
        self.functions = functions
        self.tolerance = tolerance
        self.level = 0.0
        self.rates: Dict[ReceiverId, float] = {
            rid: 0.0 for rid in network.all_receiver_ids()
        }
        self.active: Set[ReceiverId] = set(self.rates.keys())
        # Pre-compute, per link, which sessions have receivers there and the
        # receiver sets R_{i,j}; only links on some data-path matter.
        self.relevant_links: List[int] = sorted(network.routing.links_used())
        self.downstream: Dict[Tuple[int, int], Tuple[ReceiverId, ...]] = {}
        for link_id in self.relevant_links:
            for session_id in network.sessions_on_link(link_id):
                receivers = network.receivers_of_session_on_link(session_id, link_id)
                self.downstream[(session_id, link_id)] = tuple(sorted(receivers))

    @property
    def has_active(self) -> bool:
        return bool(self.active)

    def final_rates(self) -> Dict[ReceiverId, float]:
        return self.rates

    # ------------------------------------------------------------------
    # link-rate evaluation
    # ------------------------------------------------------------------
    def _function(self, session_id: int) -> LinkRateFunction:
        return self.functions.get(session_id, efficient_link_rate)

    def _session_link_rate_at(
        self, session_id: int, link_id: int, active_rate: float
    ) -> float:
        """``u_{i,j}`` when active receivers are (hypothetically) at ``active_rate``."""
        receivers = self.downstream.get((session_id, link_id), ())
        if not receivers:
            return 0.0
        rates = [
            active_rate if rid in self.active else self.rates[rid] for rid in receivers
        ]
        return self._function(session_id)(rates)

    def _link_rate_at(self, link_id: int, active_rate: float) -> float:
        total = 0.0
        for session_id in self.network.sessions_on_link(link_id):
            total += self._session_link_rate_at(session_id, link_id, active_rate)
        return total

    def _link_has_active(self, link_id: int) -> bool:
        for session_id in self.network.sessions_on_link(link_id):
            for rid in self.downstream.get((session_id, link_id), ()):
                if rid in self.active:
                    return True
        return False

    def _link_slope(self, link_id: int) -> Optional[float]:
        """Exact growth rate of ``u_j`` per unit of level, when all ``v_i`` are linear.

        Returns ``None`` when some session on the link uses a link-rate
        function without a declared ``redundancy_factor`` (the caller then
        falls back to bisection).
        """
        slope = 0.0
        for session_id in self.network.sessions_on_link(link_id):
            receivers = self.downstream.get((session_id, link_id), ())
            if not any(rid in self.active for rid in receivers):
                continue
            function = self._function(session_id)
            factor = getattr(function, "redundancy_factor", None)
            if factor is None:
                return None
            slope += float(factor)
        return slope

    # ------------------------------------------------------------------
    # increment computation
    # ------------------------------------------------------------------
    def compute_increment(self) -> float:
        """Largest uniform rate increase for all active receivers (step 3)."""
        bound = self._rho_bound()
        for link_id in self.relevant_links:
            if not self._link_has_active(link_id):
                continue
            capacity = self.network.link_capacity(link_id)
            current = self._link_rate_at(link_id, self.level)
            headroom = capacity - current
            if headroom <= 0:
                return 0.0
            slope = self._link_slope(link_id)
            if slope is not None:
                if slope > 0:
                    bound = min(bound, headroom / slope)
            else:
                bound = min(bound, self._bisect_link(link_id, capacity, bound))
        return max(bound, 0.0)

    def _rho_bound(self) -> float:
        """Increment bound imposed by the sessions' maximum desired rates."""
        bound = math.inf
        for rid in self.active:
            rho = self.network.session(rid[0]).max_rate
            if math.isfinite(rho):
                bound = min(bound, rho - self.level)
        if math.isinf(bound):
            # No rho constraint: receiver rates are still bounded by the
            # largest capacity in the network, which caps the search space.
            max_capacity = max(
                self.network.link_capacity(j) for j in self.relevant_links
            )
            bound = max(max_capacity - self.level, 0.0)
        return bound

    def _bisect_link(self, link_id: int, capacity: float, upper: float) -> float:
        """Largest increment keeping ``u_j <= c_j`` for a non-linear ``v_i``."""
        return _bisect_increment(
            lambda rate: self._link_rate_at(link_id, rate), self.level, capacity, upper
        )

    # ------------------------------------------------------------------
    # state updates
    # ------------------------------------------------------------------
    def apply_increment(self, increment: float) -> None:
        """Raise all active receivers' rates by ``increment`` (steps 4-5)."""
        self.level += increment
        for rid in self.active:
            self.rates[rid] = self.level

    def freeze_receivers(self) -> Tuple[Set[ReceiverId], Set[int]]:
        """Freeze receivers at rho or on saturated links; propagate to single-rate mates."""
        saturated: Set[int] = set()
        for link_id in self.relevant_links:
            capacity = self.network.link_capacity(link_id)
            if self._link_rate_at(link_id, self.level) >= capacity - self.tolerance * max(
                1.0, capacity
            ):
                saturated.add(link_id)

        frozen: Set[ReceiverId] = set()
        for rid in list(self.active):
            session = self.network.session(rid[0])
            at_rho = math.isfinite(session.max_rate) and self.level >= session.max_rate - self.tolerance * max(
                1.0, session.max_rate
            )
            on_saturated = any(
                link_id in saturated for link_id in self.network.data_path(rid)
            )
            if at_rho or on_saturated:
                frozen.add(rid)

        # Step 7: a single-rate session freezes as a unit.
        changed = True
        while changed:
            changed = False
            for rid in list(self.active):
                if rid in frozen:
                    continue
                session = self.network.session(rid[0])
                if not session.is_single_rate:
                    continue
                mates = set(session.receiver_ids)
                if any(
                    (mate in frozen) or (mate not in self.active)
                    for mate in mates
                    if mate != rid
                ):
                    frozen.add(rid)
                    changed = True

        self.active -= frozen
        return frozen, saturated


class _VectorizedWaterFillState(_WaterFillEngine):
    """NumPy state of the water-filling construction (see module docstring).

    The structural arrays come from the network's cached
    :class:`~repro.network.incidence.NetworkIncidence`; only the per-call
    state (activity masks, frozen rates, incremental link aggregates) lives
    here.  Per iteration, the total load of link ``j`` at hypothetical level
    ``x`` is::

        u_j(x) = frozen_load_j + slope_j * x + sum of active non-linear pairs

    where ``slope_j`` sums the ``redundancy_factor`` of the link's linear
    pairs that still have active downstream receivers, and ``frozen_load_j``
    accumulates each pair's final contribution the moment its last receiver
    freezes.  For a linear pair with an active receiver the downstream
    maximum is exactly the current level (frozen rates never exceed it), so
    this reproduces the reference computation without touching the
    downstream sets after initialisation.
    """

    def __init__(
        self,
        network: Network,
        functions: Mapping[int, LinkRateFunction],
        tolerance: float,
    ) -> None:
        self.network = network
        self.functions = functions
        self.tolerance = tolerance
        self.level = 0.0

        inc = network.incidence()
        self.inc = inc
        num_receivers = inc.num_receivers
        num_links = inc.num_links
        num_pairs = inc.num_pairs

        self.active_mask = np.ones(num_receivers, dtype=bool)
        self.num_active = num_receivers
        self.rates = np.zeros(num_receivers, dtype=np.float64)

        # Per-pair link-rate functions; linear ones advertise their slope.
        self.pair_function: List[LinkRateFunction] = [
            functions.get(int(sid), efficient_link_rate) for sid in inc.pair_session
        ]
        factors = np.full(num_pairs, np.nan, dtype=np.float64)
        for pair, function in enumerate(self.pair_function):
            factor = getattr(function, "redundancy_factor", None)
            if factor is not None:
                factors[pair] = float(factor)
        self.pair_factor = factors
        self.linear_mask = ~np.isnan(factors)
        self.nonlinear_idx = np.nonzero(~self.linear_mask)[0]

        self.pair_active_count = inc.base_pair_counts.copy()
        self.link_pair_ptr = inc.link_pair_ptr

        # Incremental aggregates (updated only for links touched by freezes).
        self.link_slope = np.bincount(
            inc.pair_link[self.linear_mask],
            weights=factors[self.linear_mask],
            minlength=num_links,
        )
        self.link_frozen_load = np.zeros(num_links, dtype=np.float64)

        self.session_active_count = inc.session_receiver_count.copy()
        self.has_nonlinear = bool(self.nonlinear_idx.size)
        self.any_finite_rho = inc.any_finite_rho

        # Per-receiver rho thresholds (freeze test vectorised over receivers).
        rho = inc.session_max_rate[inc.receiver_session]
        self.rcv_rho_finite = np.isfinite(rho)
        with np.errstate(invalid="ignore"):
            self.rcv_rho_threshold = rho - tolerance * np.maximum(1.0, rho)
        self.rcv_single_rate = inc.session_single_rate[inc.receiver_session]

        self.saturation_threshold = inc.capacities - tolerance * np.maximum(
            1.0, inc.capacities
        )
        self._pair_scratch = np.zeros(num_pairs, dtype=bool)
        # Link loads at the current level, reused between the freeze pass of
        # one iteration and the increment computation of the next (the level
        # does not change in between).
        self._link_rates_cache: Optional[np.ndarray] = None

    @property
    def has_active(self) -> bool:
        return self.num_active > 0

    def final_rates(self) -> Dict[ReceiverId, float]:
        return {
            rid: float(rate) for rid, rate in zip(self.inc.receiver_ids, self.rates)
        }

    # ------------------------------------------------------------------
    # link-rate evaluation
    # ------------------------------------------------------------------
    def _active_nonlinear_pairs(self) -> np.ndarray:
        if not self.has_nonlinear:
            return self.nonlinear_idx
        return self.nonlinear_idx[self.pair_active_count[self.nonlinear_idx] > 0]

    def _nonlinear_pair_rate(self, pair: int, active_rate: float) -> float:
        members = self.inc.pair_members(pair)
        values = np.where(self.active_mask[members], active_rate, self.rates[members])
        return float(self.pair_function[pair](values))

    def _link_rates_at(self, active_rate: float) -> np.ndarray:
        """``u_j`` for every relevant link with active receivers at ``active_rate``."""
        rates = self.link_frozen_load + self.link_slope * active_rate
        if self.has_nonlinear:
            for pair in self._active_nonlinear_pairs():
                rates[self.inc.pair_link[pair]] += self._nonlinear_pair_rate(
                    int(pair), active_rate
                )
        return rates

    def _single_link_rate_at(self, link: int, active_rate: float) -> float:
        """``u_j`` of one compact link at hypothetical ``active_rate`` (bisection)."""
        total = self.link_frozen_load[link] + self.link_slope[link] * active_rate
        for pair in range(self.link_pair_ptr[link], self.link_pair_ptr[link + 1]):
            if not self.linear_mask[pair] and self.pair_active_count[pair] > 0:
                total += self._nonlinear_pair_rate(pair, active_rate)
        return float(total)

    # ------------------------------------------------------------------
    # increment computation
    # ------------------------------------------------------------------
    def compute_increment(self) -> float:
        bound = self._rho_bound()
        has_active_pair = self.pair_active_count > 0
        link_active = np.zeros(self.inc.num_links, dtype=bool)
        link_active[self.inc.pair_link[has_active_pair]] = True

        if self._link_rates_cache is not None:
            current = self._link_rates_cache
        else:
            current = self._link_rates_at(self.level)
        headroom = self.inc.capacities - current
        if bool(np.any(link_active & (headroom <= 0.0))):
            return 0.0

        if self.has_nonlinear:
            nonlinear_active = self._active_nonlinear_pairs()
        else:
            nonlinear_active = self.nonlinear_idx
        if nonlinear_active.size:
            nonlinear_links = np.unique(self.inc.pair_link[nonlinear_active])
            nonlinear_link_mask = np.zeros(self.inc.num_links, dtype=bool)
            nonlinear_link_mask[nonlinear_links] = True
            linear_links = link_active & ~nonlinear_link_mask & (self.link_slope > 0)
        else:
            nonlinear_links = nonlinear_active  # empty
            linear_links = link_active & (self.link_slope > 0)

        if linear_links.any():
            bound = min(
                bound,
                float((headroom[linear_links] / self.link_slope[linear_links]).min()),
            )
        if len(nonlinear_links):
            if _BATCHED_BISECTION:
                bound = min(bound, self._bisect_links_batched(nonlinear_links, bound))
            else:
                for link in nonlinear_links:
                    bound = min(
                        bound,
                        self._bisect_link(
                            int(link), float(self.inc.capacities[link]), bound
                        ),
                    )
        return max(bound, 0.0)

    def _rho_bound(self) -> float:
        if self.any_finite_rho:
            active_sessions = self.session_active_count > 0
            rhos = self.inc.session_max_rate[active_sessions]
            finite = rhos[np.isfinite(rhos)]
            if finite.size:
                return float(finite.min()) - self.level
        return max(self.inc.max_capacity - self.level, 0.0)

    def _bisect_link(self, link: int, capacity: float, upper: float) -> float:
        """Largest increment keeping ``u_j <= c_j`` for a non-linear ``v_i``."""
        return _bisect_increment(
            lambda rate: self._single_link_rate_at(link, rate), self.level, capacity, upper
        )

    def _bisect_links_batched(self, links: np.ndarray, upper: float) -> float:
        """One vectorised bisection over every non-linear link of this round.

        Runs the same 80-halving search as :func:`_bisect_increment`, but
        with per-link ``lo``/``hi`` arrays advanced in lockstep instead of a
        sequential Python loop per link — each iteration evaluates every
        still-searching link once and narrows all of them together.  Links
        already feasible at ``upper`` drop out before the loop, so a round
        whose non-linear links are all unconstraining costs one evaluation
        each.  Returns the minimum of the per-link bounds (the same value
        the per-link path converges to; an equivalence test pins the two).
        """
        if upper <= 0:
            return 0.0
        links = np.asarray(links, dtype=np.int64)
        capacities = self.inc.capacities[links]
        rates = np.array(
            [self._single_link_rate_at(int(link), self.level + upper) for link in links]
        )
        searching = rates > capacities
        if not searching.any():
            return upper
        links = links[searching]
        capacities = capacities[searching]
        lo = np.zeros(len(links), dtype=np.float64)
        hi = np.full(len(links), upper, dtype=np.float64)
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            rates = np.array(
                [
                    self._single_link_rate_at(int(link), self.level + m)
                    for link, m in zip(links, mid)
                ]
            )
            feasible = rates <= capacities
            lo = np.where(feasible, mid, lo)
            hi = np.where(feasible, hi, mid)
        return float(lo.min(initial=upper))

    # ------------------------------------------------------------------
    # state updates
    # ------------------------------------------------------------------
    def apply_increment(self, increment: float) -> None:
        # Active receivers' rates are implicitly the level; they are
        # materialised into ``self.rates`` when the receiver freezes.
        self.level += increment
        self._link_rates_cache = None

    def freeze_receivers(self) -> Tuple[Set[ReceiverId], Set[int]]:
        inc = self.inc
        current = self._link_rates_at(self.level)
        saturated_mask = current >= self.saturation_threshold

        if self.any_finite_rho:
            at_rho = self.rcv_rho_finite & (self.level >= self.rcv_rho_threshold)
        else:
            at_rho = None
        if saturated_mask.any():
            if inc.is_sparse:
                # CSR path: gather the receivers of each saturated link from
                # the transposed incidence instead of slicing R x L columns.
                on_saturated = inc.receivers_on_links(np.nonzero(saturated_mask)[0])
            else:
                on_saturated = inc.membership[:, saturated_mask].any(axis=1)
            frozen_test = on_saturated if at_rho is None else (at_rho | on_saturated)
            newly = self.active_mask & frozen_test
        elif at_rho is not None:
            newly = self.active_mask & at_rho
        else:
            newly = np.zeros(len(self.active_mask), dtype=bool)

        if newly.any():
            # A single-rate session freezes as a unit: one pass suffices
            # because all receivers start active and the propagation is
            # intra-session, so active single-rate sessions are always
            # all-active.
            session_hit = np.zeros(len(inc.session_max_rate), dtype=bool)
            session_hit[inc.receiver_session[newly]] = True
            newly = newly | (
                self.active_mask
                & self.rcv_single_rate
                & session_hit[inc.receiver_session]
            )

        frozen_idx = np.nonzero(newly)[0]
        if frozen_idx.size:
            self.rates[frozen_idx] = self.level
            self.active_mask[frozen_idx] = False
            self.num_active -= int(frozen_idx.size)
            np.subtract.at(
                self.session_active_count, inc.receiver_session[frozen_idx], 1
            )
            # Update only the pairs (and hence links) the frozen receivers
            # touch; everything else keeps its incremental aggregates.
            touched = np.concatenate(
                [inc.receiver_incident_pairs(int(i)) for i in frozen_idx]
            )
            if touched.size:
                np.subtract.at(self.pair_active_count, touched, 1)
                # Deduplicate via a reusable scratch mask (cheaper than the
                # sort inside np.unique for these small index sets).
                self._pair_scratch[touched] = True
                candidates = np.nonzero(self._pair_scratch)[0]
                self._pair_scratch[candidates] = False
                drained = candidates[self.pair_active_count[candidates] == 0]
                if drained.size:
                    linear = drained[self.linear_mask[drained]]
                    if linear.size:
                        # The pair's downstream maximum is the current level:
                        # its last receiver froze at exactly this level.
                        np.subtract.at(
                            self.link_slope, inc.pair_link[linear], self.pair_factor[linear]
                        )
                        np.add.at(
                            self.link_frozen_load,
                            inc.pair_link[linear],
                            self.pair_factor[linear] * self.level,
                        )
                    for pair in drained[~self.linear_mask[drained]]:
                        self.link_frozen_load[inc.pair_link[pair]] += (
                            self._nonlinear_pair_rate(int(pair), self.level)
                        )

        # A drained pair's contribution at the current level is unchanged by
        # the slope -> frozen-load hand-off (factor * level either way), so
        # the link loads remain valid for the next increment computation.
        self._link_rates_cache = current

        frozen_ids = {inc.receiver_ids[int(i)] for i in frozen_idx}
        saturated_ids = {
            inc.relevant_links[int(c)] for c in np.nonzero(saturated_mask)[0]
        }
        return frozen_ids, saturated_ids


class _ScalarWaterFillState(_WaterFillEngine):
    """Scalar twin of :class:`_VectorizedWaterFillState` for small networks.

    Identical algorithm and incremental link aggregates, but plain Python
    floats/lists over the incidence's cached :class:`ScalarIncidenceView`.
    Selected automatically by ``method="vectorized"`` below
    ``_SCALAR_ENGINE_CUTOFF`` (see module docstring).
    """

    def __init__(
        self,
        network: Network,
        functions: Mapping[int, LinkRateFunction],
        tolerance: float,
    ) -> None:
        self.network = network
        self.tolerance = tolerance
        self.level = 0.0

        inc = network.incidence()
        self.inc = inc
        view = inc.scalar_view()
        self.view = view
        num_receivers = inc.num_receivers
        num_links = inc.num_links
        num_pairs = inc.num_pairs

        self.active = [True] * num_receivers
        self.num_active = num_receivers
        self.rates = [0.0] * num_receivers

        self.pair_function: List[LinkRateFunction] = [
            functions.get(sid, efficient_link_rate) for sid in view.pair_session
        ]
        self.pair_factor: List[Optional[float]] = []
        for function in self.pair_function:
            factor = getattr(function, "redundancy_factor", None)
            self.pair_factor.append(None if factor is None else float(factor))

        self.pair_active_count = [len(members) for members in view.pair_members]
        self.link_slope = [0.0] * num_links
        self.link_frozen_load = [0.0] * num_links
        self.link_active_pairs = [0] * num_links
        self.link_nonlinear_active = [0] * num_links
        self.has_nonlinear = False
        for pair in range(num_pairs):
            link = view.pair_link[pair]
            self.link_active_pairs[link] += 1
            factor = self.pair_factor[pair]
            if factor is None:
                self.link_nonlinear_active[link] += 1
                self.has_nonlinear = True
            else:
                self.link_slope[link] += factor

        self.session_active_count = inc.session_receiver_count.tolist()
        self.any_finite_rho = inc.any_finite_rho
        self.session_rho_threshold: List[Optional[float]] = []
        for rho in view.session_max_rate:
            if math.isfinite(rho):
                self.session_rho_threshold.append(rho - tolerance * max(1.0, rho))
            else:
                self.session_rho_threshold.append(None)
        self.saturation_threshold = [
            capacity - tolerance * max(1.0, capacity) for capacity in view.capacities
        ]

    @property
    def has_active(self) -> bool:
        return self.num_active > 0

    def final_rates(self) -> Dict[ReceiverId, float]:
        return dict(zip(self.inc.receiver_ids, self.rates))

    # ------------------------------------------------------------------
    # link-rate evaluation
    # ------------------------------------------------------------------
    def _nonlinear_pair_rate(self, pair: int, active_rate: float) -> float:
        values = [
            active_rate if self.active[member] else self.rates[member]
            for member in self.view.pair_members[pair]
        ]
        return float(self.pair_function[pair](values))

    def _single_link_rate_at(self, link: int, active_rate: float) -> float:
        total = self.link_frozen_load[link] + self.link_slope[link] * active_rate
        if self.link_nonlinear_active[link]:
            for pair in self.view.link_pairs[link]:
                if self.pair_factor[pair] is None and self.pair_active_count[pair] > 0:
                    total += self._nonlinear_pair_rate(pair, active_rate)
        return total

    # ------------------------------------------------------------------
    # increment computation
    # ------------------------------------------------------------------
    def compute_increment(self) -> float:
        bound = self._rho_bound()
        level = self.level
        bisect_links: List[int] = []
        for link in range(len(self.link_active_pairs)):
            if self.link_active_pairs[link] == 0:
                continue
            capacity = self.view.capacities[link]
            headroom = capacity - self._single_link_rate_at(link, level)
            if headroom <= 0:
                return 0.0
            if self.link_nonlinear_active[link]:
                bisect_links.append(link)
            else:
                slope = self.link_slope[link]
                if slope > 0:
                    candidate = headroom / slope
                    if candidate < bound:
                        bound = candidate
        for link in bisect_links:
            bound = min(
                bound, self._bisect_link(link, self.view.capacities[link], bound)
            )
        return max(bound, 0.0)

    def _rho_bound(self) -> float:
        if self.any_finite_rho:
            bound = math.inf
            for session_id, count in enumerate(self.session_active_count):
                if count == 0:
                    continue
                rho = self.view.session_max_rate[session_id]
                if math.isfinite(rho):
                    bound = min(bound, rho - self.level)
            if math.isfinite(bound):
                return bound
        return max(self.inc.max_capacity - self.level, 0.0)

    def _bisect_link(self, link: int, capacity: float, upper: float) -> float:
        return _bisect_increment(
            lambda rate: self._single_link_rate_at(link, rate), self.level, capacity, upper
        )

    # ------------------------------------------------------------------
    # state updates
    # ------------------------------------------------------------------
    def apply_increment(self, increment: float) -> None:
        self.level += increment

    def freeze_receivers(self) -> Tuple[Set[ReceiverId], Set[int]]:
        view = self.view
        level = self.level
        saturated_compact: List[int] = []
        saturated_flags = [False] * len(view.capacities)
        for link in range(len(view.capacities)):
            if self._single_link_rate_at(link, level) >= self.saturation_threshold[link]:
                saturated_compact.append(link)
                saturated_flags[link] = True

        frozen_idx: List[int] = []
        frozen_flags = [False] * len(self.active)
        for receiver in range(len(self.active)):
            if not self.active[receiver]:
                continue
            threshold = self.session_rho_threshold[view.receiver_session[receiver]]
            if threshold is not None and level >= threshold:
                frozen_flags[receiver] = True
                frozen_idx.append(receiver)
                continue
            for link in view.receiver_links[receiver]:
                if saturated_flags[link]:
                    frozen_flags[receiver] = True
                    frozen_idx.append(receiver)
                    break

        if frozen_idx:
            # Single-rate sessions freeze as a unit (one pass suffices:
            # propagation is intra-session and sessions start all-active).
            extra: List[int] = []
            for receiver in frozen_idx:
                session_id = view.receiver_session[receiver]
                if not view.session_single_rate[session_id]:
                    continue
                for mate in view.session_receivers[session_id]:
                    if self.active[mate] and not frozen_flags[mate]:
                        frozen_flags[mate] = True
                        extra.append(mate)
            frozen_idx.extend(extra)

            for receiver in frozen_idx:
                self.active[receiver] = False
                self.rates[receiver] = level
                self.session_active_count[view.receiver_session[receiver]] -= 1
                for pair in view.receiver_pairs[receiver]:
                    count = self.pair_active_count[pair] - 1
                    self.pair_active_count[pair] = count
                    if count == 0:
                        link = view.pair_link[pair]
                        self.link_active_pairs[link] -= 1
                        factor = self.pair_factor[pair]
                        if factor is None:
                            self.link_nonlinear_active[link] -= 1
                            self.link_frozen_load[link] += self._nonlinear_pair_rate(
                                pair, level
                            )
                        else:
                            self.link_slope[link] -= factor
                            self.link_frozen_load[link] += factor * level
            self.num_active -= len(frozen_idx)

        receiver_ids = self.inc.receiver_ids
        relevant_links = self.inc.relevant_links
        frozen_ids = {receiver_ids[index] for index in frozen_idx}
        saturated_ids = {relevant_links[link] for link in saturated_compact}
        return frozen_ids, saturated_ids
