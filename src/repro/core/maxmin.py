"""Max-min fair allocation construction (Appendix A of the paper).

The paper's construction algorithm water-fills receiver rates: starting from
zero, the rates of all "active" receivers are raised uniformly as far as
feasibility allows; a receiver becomes inactive (its rate is frozen) once

* it reaches its session's maximum desired rate ``rho_i``, or
* some link on its data-path becomes fully utilised, or
* it belongs to a single-rate session in which another receiver has been
  frozen (keeping all rates of the session identical).

The construction works for any session-type mapping ``sigma`` (mixes of
single-rate, multi-rate, and unicast sessions) and — following Section 3.1 —
for arbitrary monotone session link-rate functions ``v_i`` with
``v_i(X) >= max(X)``, which is how redundancy enters the fair allocation
(Lemma 4, Figures 4 and 6).

The resulting allocation is the unique max-min fair allocation for the
network (Lemma 5 / Corollary 5 of the technical report); tests verify
max-min fairness directly against the definition on randomised networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import FairnessComputationError
from ..network.network import LinkRateFunction, Network
from ..network.session import ReceiverId
from .allocation import Allocation, DEFAULT_TOLERANCE
from .redundancy import efficient_link_rate

__all__ = ["max_min_fair_allocation", "MaxMinTrace", "MaxMinStep"]


@dataclass(frozen=True)
class MaxMinStep:
    """One iteration of the water-filling construction (for tracing/debugging)."""

    level: float
    increment: float
    frozen_receivers: Tuple[ReceiverId, ...]
    saturated_links: Tuple[int, ...]


@dataclass
class MaxMinTrace:
    """Optional record of the water-filling iterations."""

    steps: List[MaxMinStep] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.steps)


def max_min_fair_allocation(
    network: Network,
    link_rate_functions: Optional[Mapping[int, LinkRateFunction]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    trace: Optional[MaxMinTrace] = None,
) -> Allocation:
    """Compute the max-min fair allocation of receiver rates for a network.

    Parameters
    ----------
    network:
        The network (graph, sessions with types and ``rho_i``, routing).
    link_rate_functions:
        Optional per-session link-rate functions ``v_i`` overriding the
        network's own functions; sessions without a function use the
        efficient link rate ``max``.
    tolerance:
        Numerical tolerance used for saturation and ``rho`` tests.
    trace:
        When supplied, the water-filling steps are appended to it.

    Returns
    -------
    Allocation
        The (unique) max-min fair allocation, evaluated under the same
        link-rate functions.
    """
    functions: Dict[int, LinkRateFunction] = dict(network.link_rate_functions)
    if link_rate_functions:
        functions.update(link_rate_functions)

    state = _WaterFillState(network, functions, tolerance)
    iteration_limit = 4 * (network.num_receivers + network.num_links) + 16
    iterations = 0
    while state.active:
        iterations += 1
        if iterations > iteration_limit:
            raise FairnessComputationError(
                "water-filling did not converge within "
                f"{iteration_limit} iterations (numerical issue?)"
            )
        increment = state.compute_increment()
        state.apply_increment(increment)
        frozen, saturated = state.freeze_receivers()
        if trace is not None:
            trace.steps.append(
                MaxMinStep(
                    level=state.level,
                    increment=increment,
                    frozen_receivers=tuple(sorted(frozen)),
                    saturated_links=tuple(sorted(saturated)),
                )
            )
        if not frozen and increment <= tolerance:
            raise FairnessComputationError(
                "water-filling stalled: no progress and no receiver frozen"
            )

    return Allocation(network, state.rates, functions)


class _WaterFillState:
    """Mutable state of the Appendix-A water-filling construction.

    Invariant: all active receivers share the same current rate
    (``self.level``); frozen receivers keep the rate at which they were
    frozen, which never exceeds the current level.
    """

    def __init__(
        self,
        network: Network,
        functions: Mapping[int, LinkRateFunction],
        tolerance: float,
    ) -> None:
        self.network = network
        self.functions = functions
        self.tolerance = tolerance
        self.level = 0.0
        self.rates: Dict[ReceiverId, float] = {
            rid: 0.0 for rid in network.all_receiver_ids()
        }
        self.active: Set[ReceiverId] = set(self.rates.keys())
        # Pre-compute, per link, which sessions have receivers there and the
        # receiver sets R_{i,j}; only links on some data-path matter.
        self.relevant_links: List[int] = sorted(network.routing.links_used())
        self.downstream: Dict[Tuple[int, int], Tuple[ReceiverId, ...]] = {}
        for link_id in self.relevant_links:
            for session_id in network.sessions_on_link(link_id):
                receivers = network.receivers_of_session_on_link(session_id, link_id)
                self.downstream[(session_id, link_id)] = tuple(sorted(receivers))

    # ------------------------------------------------------------------
    # link-rate evaluation
    # ------------------------------------------------------------------
    def _function(self, session_id: int) -> LinkRateFunction:
        return self.functions.get(session_id, efficient_link_rate)

    def _session_link_rate_at(
        self, session_id: int, link_id: int, active_rate: float
    ) -> float:
        """``u_{i,j}`` when active receivers are (hypothetically) at ``active_rate``."""
        receivers = self.downstream.get((session_id, link_id), ())
        if not receivers:
            return 0.0
        rates = [
            active_rate if rid in self.active else self.rates[rid] for rid in receivers
        ]
        return self._function(session_id)(rates)

    def _link_rate_at(self, link_id: int, active_rate: float) -> float:
        total = 0.0
        for session_id in self.network.sessions_on_link(link_id):
            total += self._session_link_rate_at(session_id, link_id, active_rate)
        return total

    def _link_has_active(self, link_id: int) -> bool:
        for session_id in self.network.sessions_on_link(link_id):
            for rid in self.downstream.get((session_id, link_id), ()):
                if rid in self.active:
                    return True
        return False

    def _link_slope(self, link_id: int) -> Optional[float]:
        """Exact growth rate of ``u_j`` per unit of level, when all ``v_i`` are linear.

        Returns ``None`` when some session on the link uses a link-rate
        function without a declared ``redundancy_factor`` (the caller then
        falls back to bisection).
        """
        slope = 0.0
        for session_id in self.network.sessions_on_link(link_id):
            receivers = self.downstream.get((session_id, link_id), ())
            if not any(rid in self.active for rid in receivers):
                continue
            function = self._function(session_id)
            factor = getattr(function, "redundancy_factor", None)
            if factor is None:
                return None
            slope += float(factor)
        return slope

    # ------------------------------------------------------------------
    # increment computation
    # ------------------------------------------------------------------
    def compute_increment(self) -> float:
        """Largest uniform rate increase for all active receivers (step 3)."""
        bound = self._rho_bound()
        for link_id in self.relevant_links:
            if not self._link_has_active(link_id):
                continue
            capacity = self.network.link_capacity(link_id)
            current = self._link_rate_at(link_id, self.level)
            headroom = capacity - current
            if headroom <= 0:
                return 0.0
            slope = self._link_slope(link_id)
            if slope is not None:
                if slope > 0:
                    bound = min(bound, headroom / slope)
            else:
                bound = min(bound, self._bisect_link(link_id, capacity, bound))
        return max(bound, 0.0)

    def _rho_bound(self) -> float:
        """Increment bound imposed by the sessions' maximum desired rates."""
        bound = math.inf
        for rid in self.active:
            rho = self.network.session(rid[0]).max_rate
            if math.isfinite(rho):
                bound = min(bound, rho - self.level)
        if math.isinf(bound):
            # No rho constraint: receiver rates are still bounded by the
            # largest capacity in the network, which caps the search space.
            max_capacity = max(
                self.network.link_capacity(j) for j in self.relevant_links
            )
            bound = max(max_capacity - self.level, 0.0)
        return bound

    def _bisect_link(self, link_id: int, capacity: float, upper: float) -> float:
        """Largest increment keeping ``u_j <= c_j`` for a non-linear ``v_i``."""
        if upper <= 0:
            return 0.0
        if self._link_rate_at(link_id, self.level + upper) <= capacity:
            return upper
        lo, hi = 0.0, upper
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self._link_rate_at(link_id, self.level + mid) <= capacity:
                lo = mid
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # state updates
    # ------------------------------------------------------------------
    def apply_increment(self, increment: float) -> None:
        """Raise all active receivers' rates by ``increment`` (steps 4-5)."""
        self.level += increment
        for rid in self.active:
            self.rates[rid] = self.level

    def freeze_receivers(self) -> Tuple[Set[ReceiverId], Set[int]]:
        """Freeze receivers at rho or on saturated links; propagate to single-rate mates."""
        saturated: Set[int] = set()
        for link_id in self.relevant_links:
            capacity = self.network.link_capacity(link_id)
            if self._link_rate_at(link_id, self.level) >= capacity - self.tolerance * max(
                1.0, capacity
            ):
                saturated.add(link_id)

        frozen: Set[ReceiverId] = set()
        for rid in list(self.active):
            session = self.network.session(rid[0])
            at_rho = math.isfinite(session.max_rate) and self.level >= session.max_rate - self.tolerance * max(
                1.0, session.max_rate
            )
            on_saturated = any(
                link_id in saturated for link_id in self.network.data_path(rid)
            )
            if at_rho or on_saturated:
                frozen.add(rid)

        # Step 7: a single-rate session freezes as a unit.
        changed = True
        while changed:
            changed = False
            for rid in list(self.active):
                if rid in frozen:
                    continue
                session = self.network.session(rid[0])
                if not session.is_single_rate:
                    continue
                mates = set(session.receiver_ids)
                if any(
                    (mate in frozen) or (mate not in self.active)
                    for mate in mates
                    if mate != rid
                ):
                    frozen.add(rid)
                    changed = True

        self.active -= frozen
        return frozen, saturated
