"""Weighted (TCP-style) max-min fairness — the paper's Section 5 extension.

Section 5 suggests that the paper's results "can be directly applied to
TCP-fairness by constructing a definition of max-min fairness where receiver
rates are assigned weights (i.e., a receiver's rate is weighted by the
inverse of round trip time)".  This module implements that extension:

* a receiver ``r_{i,k}`` carries a positive weight ``w_{i,k}``;
* an allocation is *weighted max-min fair* when the vector of normalised
  rates ``a_{i,k} / w_{i,k}`` is max-min fair, i.e. no receiver's normalised
  rate can be raised without lowering that of a receiver whose normalised
  rate is no larger;
* the construction is the Appendix-A water-filling run on a common
  *normalised* level ``phi``: every active receiver holds ``a = w * phi``
  and freezes when a link on its data-path saturates, it reaches its
  session's maximum desired rate, or (for single-rate sessions) a session
  mate freezes.

With all weights equal to 1 this reduces exactly to
:func:`repro.core.maxmin.max_min_fair_allocation` (tested).  The helper
:func:`rtt_weights` builds the inverse-RTT weights of TCP-fairness, and
:func:`weighted_same_path_receiver_fairness` restates Fairness Property 2 in
the weighted setting (same-path receivers' *normalised* rates must agree
unless one of them is capped by its session's maximum desired rate).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from ..errors import AllocationError, FairnessComputationError
from ..network.network import LinkRateFunction, Network
from ..network.session import ReceiverId
from .allocation import Allocation, DEFAULT_TOLERANCE
from .ordering import ordered_vector
from .properties import PropertyReport, PropertyViolation
from .redundancy import efficient_link_rate

__all__ = [
    "validate_weights",
    "rtt_weights",
    "weighted_max_min_fair_allocation",
    "normalized_rate_vector",
    "weighted_same_path_receiver_fairness",
]


def validate_weights(network: Network, weights: Mapping[ReceiverId, float]) -> Dict[ReceiverId, float]:
    """Check that every receiver has a positive, finite weight and return a copy."""
    expected = set(network.all_receiver_ids())
    provided = set(weights.keys())
    if provided != expected:
        missing = sorted(expected - provided)
        extra = sorted(provided - expected)
        raise AllocationError(
            f"weights must cover exactly the network's receivers; missing={missing}, "
            f"unexpected={extra}"
        )
    cleaned: Dict[ReceiverId, float] = {}
    for rid, weight in weights.items():
        value = float(weight)
        if not math.isfinite(value) or value <= 0:
            raise AllocationError(
                f"weight for receiver {rid} must be positive and finite, got {weight}"
            )
        cleaned[rid] = value
    return cleaned


def rtt_weights(network: Network, round_trip_times: Mapping[ReceiverId, float]) -> Dict[ReceiverId, float]:
    """TCP-fairness weights: ``w_{i,k} = 1 / RTT_{i,k}``.

    Receivers with shorter round-trip times get proportionally larger weights,
    mirroring TCP's throughput bias.
    """
    weights: Dict[ReceiverId, float] = {}
    for rid in network.all_receiver_ids():
        if rid not in round_trip_times:
            raise AllocationError(f"no round-trip time supplied for receiver {rid}")
        rtt = float(round_trip_times[rid])
        if not math.isfinite(rtt) or rtt <= 0:
            raise AllocationError(
                f"round-trip time for receiver {rid} must be positive and finite, got {rtt}"
            )
        weights[rid] = 1.0 / rtt
    return weights


def normalized_rate_vector(
    allocation: Allocation, weights: Mapping[ReceiverId, float]
) -> tuple:
    """The ordered vector of normalised rates ``a_{i,k} / w_{i,k}``."""
    weights = validate_weights(allocation.network, weights)
    return ordered_vector(
        allocation.rate(rid) / weights[rid] for rid in allocation.network.all_receiver_ids()
    )


def weighted_max_min_fair_allocation(
    network: Network,
    weights: Mapping[ReceiverId, float],
    link_rate_functions: Optional[Mapping[int, LinkRateFunction]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Allocation:
    """Compute the weighted max-min fair allocation.

    The construction raises a common normalised level ``phi`` and assigns
    every active receiver the rate ``w_{i,k} * phi``.  Link constraints are
    handled by bisection on ``phi`` (the session link rates are monotone in
    ``phi`` for any valid link-rate function), so arbitrary redundancy
    functions ``v_i`` are supported exactly as in the unweighted solver.
    """
    weights = validate_weights(network, weights)
    _validate_single_rate_weights(network, weights)
    functions: Dict[int, LinkRateFunction] = dict(network.link_rate_functions)
    if link_rate_functions:
        functions.update(link_rate_functions)

    rates: Dict[ReceiverId, float] = {rid: 0.0 for rid in network.all_receiver_ids()}
    active = set(rates.keys())
    level = 0.0

    relevant_links = sorted(network.routing.links_used())
    downstream = {
        (session_id, link_id): tuple(
            sorted(network.receivers_of_session_on_link(session_id, link_id))
        )
        for link_id in relevant_links
        for session_id in network.sessions_on_link(link_id)
    }

    def function_for(session_id: int) -> LinkRateFunction:
        return functions.get(session_id, efficient_link_rate)

    def link_rate_at(link_id: int, phi: float) -> float:
        total = 0.0
        for session_id in network.sessions_on_link(link_id):
            receivers = downstream.get((session_id, link_id), ())
            if not receivers:
                continue
            values = [
                weights[rid] * phi if rid in active else rates[rid] for rid in receivers
            ]
            total += function_for(session_id)(values)
        return total

    def link_has_active(link_id: int) -> bool:
        return any(
            rid in active
            for session_id in network.sessions_on_link(link_id)
            for rid in downstream.get((session_id, link_id), ())
        )

    def rho_bound() -> float:
        bound = math.inf
        for rid in active:
            rho = network.session(rid[0]).max_rate
            if math.isfinite(rho):
                bound = min(bound, rho / weights[rid] - level)
        if math.isinf(bound):
            max_capacity = max(network.link_capacity(j) for j in relevant_links)
            min_weight = min(weights[rid] for rid in active)
            bound = max(max_capacity / min_weight - level, 0.0)
        return bound

    def bisect_link(link_id: int, upper: float) -> float:
        capacity = network.link_capacity(link_id)
        if upper <= 0:
            return 0.0
        if link_rate_at(link_id, level + upper) <= capacity:
            return upper
        lo, hi = 0.0, upper
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if link_rate_at(link_id, level + mid) <= capacity:
                lo = mid
            else:
                hi = mid
        return lo

    iteration_limit = 4 * (network.num_receivers + network.num_links) + 16
    iterations = 0
    while active:
        iterations += 1
        if iterations > iteration_limit:
            raise FairnessComputationError(
                "weighted water-filling did not converge within "
                f"{iteration_limit} iterations"
            )

        increment = rho_bound()
        for link_id in relevant_links:
            if not link_has_active(link_id):
                continue
            headroom = network.link_capacity(link_id) - link_rate_at(link_id, level)
            if headroom <= 0:
                increment = 0.0
                break
            increment = min(increment, bisect_link(link_id, increment))
        increment = max(increment, 0.0)

        level += increment
        for rid in active:
            rates[rid] = weights[rid] * level

        saturated = {
            link_id
            for link_id in relevant_links
            if link_rate_at(link_id, level)
            >= network.link_capacity(link_id) - tolerance * max(1.0, network.link_capacity(link_id))
        }
        frozen = set()
        for rid in list(active):
            session = network.session(rid[0])
            at_rho = math.isfinite(session.max_rate) and rates[rid] >= session.max_rate - tolerance * max(
                1.0, session.max_rate
            )
            on_saturated = any(link_id in saturated for link_id in network.data_path(rid))
            if at_rho or on_saturated:
                frozen.add(rid)
        # Single-rate sessions freeze as a unit (all receivers share one rate,
        # which in the weighted setting requires equal weights within the
        # session; heterogeneous weights are rejected below).
        changed = True
        while changed:
            changed = False
            for rid in list(active):
                if rid in frozen:
                    continue
                session = network.session(rid[0])
                if not session.is_single_rate:
                    continue
                if any(
                    mate in frozen or mate not in active
                    for mate in session.receiver_ids
                    if mate != rid
                ):
                    frozen.add(rid)
                    changed = True

        active -= frozen
        if not frozen and increment <= tolerance:
            raise FairnessComputationError("weighted water-filling stalled")

    return Allocation(network, rates, functions)


def _validate_single_rate_weights(network: Network, weights: Mapping[ReceiverId, float]) -> None:
    """Single-rate sessions need uniform weights (their receivers share one rate)."""
    for session in network.sessions:
        if not session.is_single_rate or session.num_receivers <= 1:
            continue
        values = [weights[rid] for rid in session.receiver_ids]
        if max(values) - min(values) > 1e-12 * max(values):
            raise AllocationError(
                f"single-rate session {session.name} has heterogeneous weights {values}; "
                "all receivers of a single-rate session share one rate, so their "
                "weights must be equal"
            )


def weighted_same_path_receiver_fairness(
    allocation: Allocation,
    weights: Mapping[ReceiverId, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> PropertyReport:
    """Fairness Property 2 restated for weighted fairness.

    Two receivers whose data-paths traverse the same set of links must have
    equal *normalised* rates ``a / w`` unless the one with the smaller
    normalised rate is capped by its session's maximum desired rate.
    """
    network = allocation.network
    weights = validate_weights(network, weights)
    groups: Dict[frozenset, list] = {}
    for rid in network.all_receiver_ids():
        groups.setdefault(network.routing.data_path_set(rid), []).append(rid)

    violations = []
    for group in groups.values():
        if len(group) < 2:
            continue
        for index, rid_a in enumerate(group):
            for rid_b in group[index + 1:]:
                norm_a = allocation.rate(rid_a) / weights[rid_a]
                norm_b = allocation.rate(rid_b) / weights[rid_b]
                if abs(norm_a - norm_b) <= tolerance * max(1.0, norm_a, norm_b):
                    continue
                lower = rid_a if norm_a < norm_b else rid_b
                rho = network.session(lower[0]).max_rate
                if allocation.rate(lower) >= rho - tolerance * max(1.0, rho):
                    continue
                violations.append(
                    PropertyViolation(
                        subject=(rid_a, rid_b),
                        description=(
                            f"receivers {network.receiver(rid_a).name} and "
                            f"{network.receiver(rid_b).name} share a data-path but their "
                            f"weighted rates differ ({norm_a:g} vs {norm_b:g})"
                        ),
                    )
                )
    return PropertyReport("weighted-same-path-receiver-fairness", not violations, violations)
