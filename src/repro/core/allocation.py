"""Allocations of receiver rates and the link rates they induce.

An *allocation* assigns a rate ``a_{i,k}`` to every receiver in a network
(Section 2).  From an allocation and the network's routing we derive:

* the session link rate ``u_{i,j} = v_i({a_{i,k} : r_{i,k} in R_{i,j}})``,
  where ``v_i`` defaults to the efficient link rate (``max``);
* the link rate ``u_j = sum_i u_{i,j}``;
* link utilisation and the set of fully utilised links;
* the ordered receiver-rate vector used by the min-unfavorability ordering.

The class is immutable; derived builders (:meth:`Allocation.with_rate`,
:meth:`Allocation.scaled`) return new instances.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Tuple

from ..errors import AllocationError
from ..network.network import LinkRateFunction, Network
from ..network.session import ReceiverId
from .redundancy import efficient_link_rate

__all__ = ["Allocation", "DEFAULT_TOLERANCE"]

#: Default absolute/relative tolerance used for capacity and equality checks.
DEFAULT_TOLERANCE = 1e-9


class Allocation(Mapping[ReceiverId, float]):
    """An immutable assignment of rates to every receiver of a network.

    Parameters
    ----------
    network:
        The network the allocation refers to.
    rates:
        Mapping from receiver id ``(session_id, receiver_index)`` to its rate
        ``a_{i,k}``.  Every receiver of the network must be present and every
        rate must be non-negative and finite.
    link_rate_functions:
        Optional per-session link-rate functions ``v_i`` overriding both the
        efficient default and any functions attached to the network.  Sessions
        absent from the mapping use the network's function (if any) or the
        efficient link rate.
    """

    def __init__(
        self,
        network: Network,
        rates: Mapping[ReceiverId, float],
        link_rate_functions: Optional[Mapping[int, LinkRateFunction]] = None,
    ) -> None:
        self._network = network
        expected = set(network.all_receiver_ids())
        provided = set(rates.keys())
        if provided != expected:
            missing = sorted(expected - provided)
            extra = sorted(provided - expected)
            raise AllocationError(
                f"allocation must cover exactly the network's receivers; "
                f"missing={missing}, unexpected={extra}"
            )
        cleaned: Dict[ReceiverId, float] = {}
        for rid, rate in rates.items():
            value = float(rate)
            if not math.isfinite(value) or value < 0:
                raise AllocationError(
                    f"rate for receiver {rid} must be finite and non-negative, got {rate}"
                )
            cleaned[rid] = value
        self._rates = cleaned

        merged: Dict[int, LinkRateFunction] = dict(network.link_rate_functions)
        if link_rate_functions:
            merged.update(link_rate_functions)
        self._link_rate_functions = merged
        # Allocations are immutable, so total link rates can be memoised; the
        # fairness-property checkers ask for the same links repeatedly.
        self._link_rate_cache: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, network: Network) -> "Allocation":
        """The all-zero allocation (always feasible)."""
        return cls(network, {rid: 0.0 for rid in network.all_receiver_ids()})

    @classmethod
    def uniform(cls, network: Network, rate: float) -> "Allocation":
        """Every receiver gets the same rate (not necessarily feasible)."""
        return cls(network, {rid: rate for rid in network.all_receiver_ids()})

    @classmethod
    def from_session_rates(cls, network: Network, session_rates: Mapping[int, float]) -> "Allocation":
        """Build an allocation where all receivers of a session share one rate.

        Natural for single-rate sessions; sessions missing from the mapping
        get rate zero.
        """
        rates: Dict[ReceiverId, float] = {}
        for session in network.sessions:
            rate = float(session_rates.get(session.session_id, 0.0))
            for rid in session.receiver_ids:
                rates[rid] = rate
        return cls(network, rates)

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, receiver_id: ReceiverId) -> float:
        return self._rates[receiver_id]

    def __iter__(self) -> Iterator[ReceiverId]:
        return iter(sorted(self._rates.keys()))

    def __len__(self) -> int:
        return len(self._rates)

    # ------------------------------------------------------------------
    # receiver-perspective accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        return self._network

    def rate(self, receiver_id: ReceiverId) -> float:
        """The rate ``a_{i,k}`` assigned to a receiver."""
        try:
            return self._rates[receiver_id]
        except KeyError:
            raise AllocationError(f"unknown receiver id {receiver_id}") from None

    def session_receiver_rates(self, session_id: int) -> Dict[ReceiverId, float]:
        """Rates of all receivers belonging to one session."""
        session = self._network.session(session_id)
        return {rid: self._rates[rid] for rid in session.receiver_ids}

    def session_rate(self, session_id: int) -> float:
        """The common rate of a single-rate (or unicast) session.

        Raises
        ------
        AllocationError
            If the session's receivers do not all share the same rate.
        """
        values = list(self.session_receiver_rates(session_id).values())
        first = values[0]
        if any(abs(v - first) > DEFAULT_TOLERANCE * max(1.0, abs(first)) for v in values):
            raise AllocationError(
                f"session {session_id} receivers do not share a single rate: {values}"
            )
        return first

    def ordered_vector(self) -> Tuple[float, ...]:
        """Receiver rates sorted ascending — the vector used by ``<=_m``."""
        return tuple(sorted(self._rates.values()))

    def min_rate(self) -> float:
        return min(self._rates.values())

    def max_rate(self) -> float:
        return max(self._rates.values())

    def total_receiver_throughput(self) -> float:
        """Sum of receiver rates (a receiver-satisfaction style metric)."""
        return sum(self._rates.values())

    def as_dict(self) -> Dict[ReceiverId, float]:
        return dict(self._rates)

    # ------------------------------------------------------------------
    # link-perspective accessors
    # ------------------------------------------------------------------
    def link_rate_function(self, session_id: int) -> LinkRateFunction:
        """The link-rate function ``v_i`` in effect for a session."""
        return self._link_rate_functions.get(session_id, efficient_link_rate)

    def session_link_rate(self, session_id: int, link_id: int) -> float:
        """The session link rate ``u_{i,j}``.

        Zero when no receiver of the session crosses the link.
        """
        downstream = self._network.receivers_of_session_on_link(session_id, link_id)
        if not downstream:
            return 0.0
        rates = [self._rates[rid] for rid in downstream]
        return self.link_rate_function(session_id)(rates)

    def efficient_session_link_rate(self, session_id: int, link_id: int) -> float:
        """The efficient link rate ``max{a_{i,k} : r_{i,k} in R_{i,j}}``."""
        downstream = self._network.receivers_of_session_on_link(session_id, link_id)
        if not downstream:
            return 0.0
        return efficient_link_rate([self._rates[rid] for rid in downstream])

    def link_rate(self, link_id: int) -> float:
        """The total link rate ``u_j = sum_i u_{i,j}`` (memoised)."""
        cached = self._link_rate_cache.get(link_id)
        if cached is not None:
            return cached
        total = 0.0
        for session_id in self._network.sessions_on_link(link_id):
            total += self.session_link_rate(session_id, link_id)
        self._link_rate_cache[link_id] = total
        return total

    def link_rates(self) -> Dict[int, float]:
        """Total link rate for every link (links carrying no traffic report 0)."""
        return {link.link_id: self.link_rate(link.link_id) for link in self._network.graph.links}

    def session_link_rates(self, link_id: int) -> Dict[int, float]:
        """Per-session link rates ``u_{i,j}`` on one link, for all sessions."""
        return {
            session.session_id: self.session_link_rate(session.session_id, link_id)
            for session in self._network.sessions
        }

    def link_utilization(self, link_id: int) -> float:
        """``u_j / c_j``."""
        capacity = self._network.link_capacity(link_id)
        return self.link_rate(link_id) / capacity

    def is_link_fully_utilized(self, link_id: int, tolerance: float = DEFAULT_TOLERANCE) -> bool:
        """True when ``u_j`` equals ``c_j`` up to tolerance."""
        capacity = self._network.link_capacity(link_id)
        return self.link_rate(link_id) >= capacity - tolerance * max(1.0, capacity)

    def fully_utilized_links(self, tolerance: float = DEFAULT_TOLERANCE) -> FrozenSet[int]:
        """Ids of all fully utilised links."""
        return frozenset(
            link.link_id
            for link in self._network.graph.links
            if self.is_link_fully_utilized(link.link_id, tolerance)
        )

    def link_redundancy(self, session_id: int, link_id: int) -> float:
        """Measured redundancy of the session on the link: ``u_{i,j}`` over efficient.

        1.0 when the session does not use the link.
        """
        efficient = self.efficient_session_link_rate(session_id, link_id)
        if efficient <= 0.0:
            return 1.0
        return self.session_link_rate(session_id, link_id) / efficient

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_rate(self, receiver_id: ReceiverId, rate: float) -> "Allocation":
        """A copy with one receiver's rate replaced."""
        if receiver_id not in self._rates:
            raise AllocationError(f"unknown receiver id {receiver_id}")
        rates = dict(self._rates)
        rates[receiver_id] = rate
        return Allocation(self._network, rates, self._link_rate_functions)

    def scaled(self, factor: float) -> "Allocation":
        """A copy with every rate multiplied by ``factor >= 0``."""
        if factor < 0:
            raise AllocationError(f"scale factor must be non-negative, got {factor}")
        return Allocation(
            self._network,
            {rid: rate * factor for rid, rate in self._rates.items()},
            self._link_rate_functions,
        )

    def with_link_rate_functions(
        self, functions: Mapping[int, LinkRateFunction]
    ) -> "Allocation":
        """A copy evaluated under different link-rate functions ``v_i``."""
        return Allocation(self._network, self._rates, functions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{self._network.receiver(rid).name}={rate:g}" for rid, rate in sorted(self._rates.items())
        )
        return f"Allocation({parts})"
