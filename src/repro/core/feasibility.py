"""Feasibility of allocations (Section 2).

An allocation is *feasible* when

* every receiver rate satisfies ``0 <= a_{i,k} <= rho_i``;
* no link is over-utilised: ``u_j = sum_i u_{i,j} <= c_j`` for every link;
* every single-rate session's receivers share one common rate.

:func:`check_feasibility` reports all violations; :func:`is_feasible` gives
the boolean; :func:`assert_feasible` raises on the first failure with a
readable message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import InfeasibleAllocationError
from ..network.network import Network
from .allocation import Allocation, DEFAULT_TOLERANCE

__all__ = [
    "FeasibilityViolation",
    "FeasibilityReport",
    "check_feasibility",
    "is_feasible",
    "assert_feasible",
]


@dataclass(frozen=True)
class FeasibilityViolation:
    """A single feasibility violation.

    ``kind`` is one of ``"negative-rate"``, ``"max-rate"``,
    ``"link-capacity"``, or ``"single-rate"``.
    """

    kind: str
    description: str
    amount: float = 0.0


@dataclass
class FeasibilityReport:
    """Outcome of a feasibility check."""

    feasible: bool
    violations: List[FeasibilityViolation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.feasible

    def summary(self) -> str:
        if self.feasible:
            return "feasible"
        lines = [f"infeasible ({len(self.violations)} violations):"]
        lines.extend(f"  - [{v.kind}] {v.description}" for v in self.violations)
        return "\n".join(lines)


def check_feasibility(
    allocation: Allocation,
    tolerance: float = DEFAULT_TOLERANCE,
) -> FeasibilityReport:
    """Check an allocation against rate bounds, capacities, and session types."""
    network: Network = allocation.network
    violations: List[FeasibilityViolation] = []

    # Receiver-rate bounds: 0 <= a_{i,k} <= rho_i.
    for session in network.sessions:
        for receiver in session.receivers:
            rate = allocation.rate(receiver.receiver_id)
            if rate < -tolerance:
                violations.append(
                    FeasibilityViolation(
                        kind="negative-rate",
                        description=f"{receiver.name} has negative rate {rate}",
                        amount=-rate,
                    )
                )
            excess = rate - session.max_rate
            if excess > tolerance * max(1.0, session.max_rate):
                violations.append(
                    FeasibilityViolation(
                        kind="max-rate",
                        description=(
                            f"{receiver.name} rate {rate} exceeds the session maximum "
                            f"desired rate rho={session.max_rate}"
                        ),
                        amount=excess,
                    )
                )

    # Link capacities: u_j <= c_j.
    for link in network.graph.links:
        link_rate = allocation.link_rate(link.link_id)
        capacity = link.capacity
        excess = link_rate - capacity
        if excess > tolerance * max(1.0, capacity):
            violations.append(
                FeasibilityViolation(
                    kind="link-capacity",
                    description=(
                        f"link {link.name} carries {link_rate:.6g} "
                        f"exceeding capacity {capacity:.6g}"
                    ),
                    amount=excess,
                )
            )

    # Single-rate sessions: all receivers equal.
    for session in network.sessions:
        if not session.is_single_rate or session.num_receivers <= 1:
            continue
        rates = [allocation.rate(rid) for rid in session.receiver_ids]
        spread = max(rates) - min(rates)
        if spread > tolerance * max(1.0, max(rates)):
            violations.append(
                FeasibilityViolation(
                    kind="single-rate",
                    description=(
                        f"single-rate session {session.name} has unequal receiver "
                        f"rates {rates}"
                    ),
                    amount=spread,
                )
            )

    return FeasibilityReport(feasible=not violations, violations=violations)


def is_feasible(allocation: Allocation, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """True when the allocation satisfies all feasibility constraints."""
    return check_feasibility(allocation, tolerance).feasible


def assert_feasible(allocation: Allocation, tolerance: float = DEFAULT_TOLERANCE) -> None:
    """Raise :class:`InfeasibleAllocationError` if the allocation is infeasible."""
    report = check_feasibility(allocation, tolerance)
    if not report.feasible:
        raise InfeasibleAllocationError(report.summary())
