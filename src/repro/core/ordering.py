"""The min-unfavorability ordering on allocations (Definition 2, Lemmas 1-2).

The paper compares allocations by sorting their receiver rates into ordered
(non-decreasing) vectors and applying the *min-unfavorable* relation
``<=_m``: ``X <=_m Y`` iff ``X = Y`` or, at the first position where the two
ordered vectors differ, ``X`` is smaller — i.e. lexicographic order on the
sorted vectors ("alphabetisation places X before Y").

Key facts reproduced and tested here:

* ``<=_m`` is reflexive, transitive, and total on ordered vectors of equal
  length (Definition 2);
* Lemma 1: every feasible allocation is min-unfavorable to the max-min fair
  allocation, so the max-min fair allocation is the maximum under ``<=_m``;
* Lemma 2: ``X <_m Y`` iff there is a threshold ``x0`` such that below it
  ``X`` never has fewer small entries than ``Y`` and at ``x0`` it has
  strictly more.

Numerical tolerance matters because allocations come out of floating-point
water-filling; all comparisons accept a ``tolerance`` below which two rates
are considered equal.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from ..errors import AllocationError
from .allocation import Allocation, DEFAULT_TOLERANCE

__all__ = [
    "ordered_vector",
    "is_ordered",
    "min_unfavorable",
    "strictly_min_unfavorable",
    "compare_ordered_vectors",
    "compare_allocations",
    "lemma2_threshold",
    "count_at_or_below",
]

VectorLike = Union[Sequence[float], Allocation]


def _as_vector(value: VectorLike) -> Tuple[float, ...]:
    if isinstance(value, Allocation):
        return value.ordered_vector()
    return tuple(sorted(float(x) for x in value))


def ordered_vector(values: Iterable[float]) -> Tuple[float, ...]:
    """Sort values into the non-decreasing "ordered vector" of Definition 2."""
    return tuple(sorted(float(x) for x in values))


def is_ordered(values: Sequence[float]) -> bool:
    """True when the sequence is already non-decreasing."""
    return all(values[i] <= values[i + 1] for i in range(len(values) - 1))


def compare_ordered_vectors(
    x: VectorLike,
    y: VectorLike,
    tolerance: float = DEFAULT_TOLERANCE,
) -> int:
    """Three-way comparison under min-unfavorability.

    Returns ``-1`` when ``X <_m Y``, ``0`` when the vectors are equal (up to
    tolerance), and ``+1`` when ``Y <_m X``.  Vectors must have equal length
    (allocations being compared must cover the same number of receivers).
    """
    vec_x = _as_vector(x)
    vec_y = _as_vector(y)
    if len(vec_x) != len(vec_y):
        raise AllocationError(
            f"cannot compare ordered vectors of different lengths "
            f"({len(vec_x)} vs {len(vec_y)})"
        )
    for a, b in zip(vec_x, vec_y):
        if abs(a - b) <= tolerance * max(1.0, abs(a), abs(b)):
            continue
        return -1 if a < b else 1
    return 0


def min_unfavorable(
    x: VectorLike,
    y: VectorLike,
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """``X <=_m Y``: X is min-unfavorable to Y (Y is at least as max-min fair)."""
    return compare_ordered_vectors(x, y, tolerance) <= 0


def strictly_min_unfavorable(
    x: VectorLike,
    y: VectorLike,
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """``X <_m Y``: min-unfavorable and not equal."""
    return compare_ordered_vectors(x, y, tolerance) < 0


def compare_allocations(
    a: Allocation,
    b: Allocation,
    tolerance: float = DEFAULT_TOLERANCE,
) -> int:
    """Three-way ``<=_m`` comparison of two allocations' receiver-rate vectors.

    ``-1`` means ``a`` is strictly less max-min fair than ``b``; ``+1`` the
    opposite; ``0`` means their ordered rate vectors coincide.
    """
    return compare_ordered_vectors(a, b, tolerance)


def count_at_or_below(values: VectorLike, threshold: float, tolerance: float = DEFAULT_TOLERANCE) -> int:
    """``|{x_i : x_i <= z}|`` with tolerance, used by the Lemma 2 statement."""
    vec = _as_vector(values)
    return sum(1 for v in vec if v <= threshold + tolerance * max(1.0, abs(threshold)))


def lemma2_threshold(
    x: VectorLike,
    y: VectorLike,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Optional[float]:
    """The Lemma 2 witness threshold ``x0`` for ``X <_m Y``, or ``None``.

    When ``X <_m Y`` there exists ``x0`` such that for every ``z < x0`` the
    number of entries of ``X`` at or below ``z`` is at least the number for
    ``Y``, and at ``x0`` it is strictly larger.  The witness returned is the
    value of ``X`` at the first position where the ordered vectors differ
    (which satisfies the statement); ``None`` is returned when
    ``X <_m Y`` does not hold.
    """
    vec_x = _as_vector(x)
    vec_y = _as_vector(y)
    if compare_ordered_vectors(vec_x, vec_y, tolerance) >= 0:
        return None
    for a, b in zip(vec_x, vec_y):
        if abs(a - b) <= tolerance * max(1.0, abs(a), abs(b)):
            continue
        # First differing position; X is smaller there.
        return a
    return None  # pragma: no cover - unreachable given the comparison above
