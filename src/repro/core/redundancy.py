"""Redundancy: session link-rate functions ``v_i`` and derived quantities.

Section 3 of the paper defines the *redundancy* of a link ``l_j`` for a
session ``S_i`` as::

    redundancy = u_{i,j} / max{a_{i,k} : r_{i,k} in R_{i,j}}

the ratio of the bandwidth the session actually uses on the link to the
theoretical lower bound needed to deliver the downstream receivers' rates
(the *efficient link rate*).  A session is *efficient* on a link when its
redundancy there is one.

Section 3.1 generalises the network model by attaching to each session a
*link-rate function* ``v_i`` that maps the set of downstream receiver rates
to the session link rate, with ``v_i(X) >= max(X)``.  This module provides
the standard choices of ``v_i``:

* :func:`efficient_link_rate` — the Section 2 assumption ``v_i = max``;
* :func:`constant_redundancy` — ``v_i(X) = factor * max(X)`` (used by the
  Figure 4 and Figure 6 analyses and Lemma 4);
* :func:`random_join_link_rate` — the Appendix B expectation for a single
  layer with uncoordinated (random) joins,
  ``E[U_{i,j}] = lambda * (1 - prod_t (1 - a_t / lambda))``.

plus the closed forms behind Figure 6 (:func:`bottleneck_fair_rate`,
:func:`normalized_fair_rate`) and helpers for measuring redundancy from an
observed link rate.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from ..errors import AllocationError

__all__ = [
    "LinkRateFunction",
    "efficient_link_rate",
    "constant_redundancy",
    "random_join_link_rate",
    "link_redundancy",
    "session_redundancy_bound",
    "bottleneck_fair_rate",
    "normalized_fair_rate",
]

#: Type alias mirroring :data:`repro.network.network.LinkRateFunction` without
#: importing the network package (avoids a circular dependency).
LinkRateFunction = Callable[[Sequence[float]], float]


def efficient_link_rate(rates: Sequence[float]) -> float:
    """The efficient link rate ``max{a_{i,k}}`` (Section 2's assumption).

    Returns 0 for an empty rate collection (the session does not use the
    link at all).
    """
    rates = list(rates)
    if not rates:
        return 0.0
    return max(rates)


# The water-filling algorithm exploits linear link-rate functions to take
# exact steps; functions built by the factories below advertise their slope
# through the ``redundancy_factor`` attribute.
efficient_link_rate.redundancy_factor = 1.0  # type: ignore[attr-defined]


def constant_redundancy(factor: float, min_receivers: int = 1) -> LinkRateFunction:
    """A link-rate function with a fixed redundancy ``factor >= 1``.

    ``v(X) = factor * max(X)``: the session uses ``factor`` times the
    efficient link rate.  This is the model used by the Figure 6 fair-rate
    analysis, Lemma 4, and the Figure 4 example (factor 2 on the shared
    link).

    ``min_receivers`` controls on how many downstream receivers the
    inefficiency kicks in.  Redundancy physically arises from imperfect
    coordination of joins and leaves *among several receivers sharing a
    link*; a link with a single downstream receiver is always efficient.
    Passing ``min_receivers=2`` models exactly that (and reproduces the
    Figure 4 numbers, where only the shared link ``l4`` is inflated), while
    the default ``min_receivers=1`` applies the factor unconditionally
    (the abstract Lemma 4 / Figure 6 model).
    """
    if factor < 1.0:
        raise AllocationError(f"redundancy factor must be >= 1, got {factor}")
    if min_receivers < 1:
        raise AllocationError(f"min_receivers must be >= 1, got {min_receivers}")

    def link_rate(rates: Sequence[float]) -> float:
        rates = list(rates)
        if not rates:
            return 0.0
        if len(rates) < min_receivers:
            return max(rates)
        return factor * max(rates)

    if min_receivers == 1:
        # The function is then globally linear in the growing receiver rate,
        # which lets the water-filling construction take exact steps.
        link_rate.redundancy_factor = float(factor)  # type: ignore[attr-defined]
    link_rate.__name__ = f"constant_redundancy_{factor}"  # type: ignore[attr-defined]
    return link_rate


def random_join_link_rate(transmission_rate: float) -> LinkRateFunction:
    """The Appendix B expected link rate under uncoordinated random joins.

    A single layer transmits at rate ``transmission_rate`` (the paper's
    ``lambda``); each downstream receiver ``t`` independently picks the
    ``a_t * delta_t`` packets it receives uniformly at random from the
    ``lambda * delta_t`` packets of the quantum.  A packet crosses the link
    iff at least one receiver picked it, so the expected link rate is::

        E[U] = lambda * (1 - prod_t (1 - a_t / lambda))

    Receiver rates above ``lambda`` are clamped to ``lambda`` (a receiver
    cannot take more than the layer offers).
    """
    if transmission_rate <= 0:
        raise AllocationError(
            f"layer transmission rate must be positive, got {transmission_rate}"
        )

    def link_rate(rates: Sequence[float]) -> float:
        rates = list(rates)
        if not rates:
            return 0.0
        # Work in log space (log1p/expm1) so that tiny receiver rates do not
        # underflow to a link rate of exactly zero.
        log_miss = 0.0
        for rate in rates:
            fraction = min(max(rate, 0.0), transmission_rate) / transmission_rate
            if fraction >= 1.0:
                return transmission_rate
            log_miss += math.log1p(-fraction)
        return transmission_rate * (-math.expm1(log_miss))

    link_rate.transmission_rate = float(transmission_rate)  # type: ignore[attr-defined]
    link_rate.__name__ = f"random_join_link_rate_{transmission_rate}"  # type: ignore[attr-defined]
    return link_rate


def link_redundancy(link_rate: float, receiver_rates: Sequence[float]) -> float:
    """Redundancy of a link for a session: ``u_{i,j} / max(a_{i,k})``.

    Returns 1.0 when the session has no downstream receivers with positive
    rate (both numerator and the efficient rate are then zero and the session
    is trivially efficient).
    """
    efficient = efficient_link_rate(receiver_rates)
    if efficient <= 0.0:
        return 1.0
    return link_rate / efficient


def session_redundancy_bound(receiver_rates: Sequence[float], transmission_rate: float) -> float:
    """Upper bound on single-layer redundancy: ``lambda / max(a_{i,k})``.

    Section 3 observes that redundancy "can only be as large as the
    multiplicative inverse" of the ratio of the efficient link rate to the
    layer transmission rate; this helper exposes that bound for tests and
    experiments.
    """
    efficient = efficient_link_rate(receiver_rates)
    if efficient <= 0.0:
        return 1.0
    return transmission_rate / efficient


def bottleneck_fair_rate(
    num_sessions: int,
    num_redundant: int,
    redundancy: float,
    capacity: float = 1.0,
) -> float:
    """The Figure 6 closed form: fair rate on a shared bottleneck.

    ``n`` sessions are constrained by the same link of capacity ``c``; ``m``
    of them are multi-rate with redundancy ``v`` on that link and the rest
    are efficient.  Every receiver's max-min fair rate is::

        c / ((n - m) + m * v)
    """
    if num_sessions < 1:
        raise AllocationError("need at least one session")
    if not 0 <= num_redundant <= num_sessions:
        raise AllocationError(
            f"num_redundant must lie in [0, num_sessions], got {num_redundant}"
        )
    if redundancy < 1.0:
        raise AllocationError(f"redundancy must be >= 1, got {redundancy}")
    if capacity <= 0:
        raise AllocationError(f"capacity must be positive, got {capacity}")
    denominator = (num_sessions - num_redundant) + num_redundant * redundancy
    return capacity / denominator


def normalized_fair_rate(redundant_fraction: float, redundancy: float) -> float:
    """The Figure 6 y-axis: fair rate normalised by the all-efficient rate ``c/n``.

    With ``f = m/n`` the fraction of sessions exhibiting redundancy ``v``::

        normalised rate = 1 / ((1 - f) + f * v)

    which is 1 when ``v = 1`` or ``f = 0`` and decays towards ``1/v`` as the
    whole population becomes redundant.
    """
    if not 0.0 <= redundant_fraction <= 1.0:
        raise AllocationError(
            f"redundant fraction must lie in [0, 1], got {redundant_fraction}"
        )
    if redundancy < 1.0:
        raise AllocationError(f"redundancy must be >= 1, got {redundancy}")
    return 1.0 / ((1.0 - redundant_fraction) + redundant_fraction * redundancy)
