"""The four desirable fairness properties (Section 2.1) and their checkers.

Each checker inspects an allocation for one of the paper's fairness
properties and returns a :class:`PropertyReport` describing whether the
property holds and, when it does not, exactly which receivers, receiver
pairs, or sessions violate it.  The properties are:

1. **Fully-utilized-receiver-fairness** — every receiver either reaches its
   session's maximum desired rate or crosses a fully utilised link on which
   no other receiver (of any session) receives at a higher rate.
2. **Same-path-receiver-fairness** — two receivers whose data-paths traverse
   the same set of links receive at equal rates unless one of them is capped
   by its session's maximum desired rate.
3. **Per-receiver-link-fairness** — for each receiver, some fully utilised
   link on its data-path carries its session's traffic at a link rate no
   smaller than any other session's link rate there (or the receiver is at
   its maximum desired rate).
4. **Per-session-link-fairness** — the weaker, per-session version of (3):
   at least one receiver's data-path contains such a link.

The unicast properties 1 and 2 from which these are derived are also
provided for completeness on unicast networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..network.network import Network
from ..network.session import ReceiverId
from .allocation import Allocation, DEFAULT_TOLERANCE

__all__ = [
    "PropertyViolation",
    "PropertyReport",
    "fully_utilized_receiver_fairness",
    "same_path_receiver_fairness",
    "per_receiver_link_fairness",
    "per_session_link_fairness",
    "check_all_properties",
    "PROPERTY_CHECKERS",
]


@dataclass(frozen=True)
class PropertyViolation:
    """One violation of a fairness property.

    ``subject`` identifies the violating entity: a receiver id, a pair of
    receiver ids, or a session id, depending on the property.
    """

    subject: object
    description: str


@dataclass
class PropertyReport:
    """Outcome of checking one fairness property on an allocation."""

    property_name: str
    holds: bool
    violations: List[PropertyViolation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds

    def summary(self) -> str:
        if self.holds:
            return f"{self.property_name}: holds"
        lines = [f"{self.property_name}: fails ({len(self.violations)} violations)"]
        lines.extend(f"  - {v.description}" for v in self.violations)
        return "\n".join(lines)


def _at_max_rate(network: Network, allocation: Allocation, rid: ReceiverId, tol: float) -> bool:
    rho = network.session(rid[0]).max_rate
    rate = allocation.rate(rid)
    return rate >= rho - tol * max(1.0, rho)


def _session_rates_on_full_links(
    allocation: Allocation, full_links: Sequence[int]
) -> Dict[int, Dict[int, float]]:
    """Per fully utilised link, the link rates ``u_{i,j}`` of its sessions.

    The link-perspective checkers compare every session against every other
    session on each fully utilised link; computing the rates once per link
    avoids re-deriving the same ``u_{i,j}`` for every receiver.
    """
    network = allocation.network
    return {
        link_id: {
            session_id: allocation.session_link_rate(session_id, link_id)
            for session_id in network.sessions_on_link(link_id)
        }
        for link_id in full_links
    }


def _session_dominates_link(
    rates_on_link: Dict[int, float], session_id: int, tolerance: float
) -> bool:
    """True when no other session's link rate exceeds the session's own."""
    own = rates_on_link.get(session_id, 0.0)
    threshold = own + tolerance * max(1.0, own)
    return all(
        rate <= threshold
        for other_id, rate in rates_on_link.items()
        if other_id != session_id
    )


# ----------------------------------------------------------------------
# Fairness Property 1
# ----------------------------------------------------------------------

def fully_utilized_receiver_fairness(
    allocation: Allocation,
    receivers: Optional[Sequence[ReceiverId]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> PropertyReport:
    """Check fully-utilized-receiver-fairness (Fairness Property 1).

    A receiver's rate is fully-utilized-receiver-fair when it equals the
    session's maximum desired rate, or some fully utilised link on its
    data-path carries no receiver (of any session) at a higher rate.  When
    ``receivers`` is given only those receivers are checked (used by
    Theorem 2, which restricts the property to multi-rate sessions in mixed
    networks).
    """
    network = allocation.network
    full_links = allocation.fully_utilized_links(tolerance)
    targets = list(receivers) if receivers is not None else network.all_receiver_ids()

    # The witness test only compares against the highest rate crossing the
    # link, so that maximum can be computed once per fully utilised link
    # instead of rescanning R_j for every receiver.
    max_rate_on_link: Dict[int, float] = {
        link_id: max(
            (allocation.rate(other) for other in network.receivers_on_link(link_id)),
            default=0.0,
        )
        for link_id in full_links
    }

    violations: List[PropertyViolation] = []
    for rid in targets:
        if _at_max_rate(network, allocation, rid, tolerance):
            continue
        rate = allocation.rate(rid)
        witnessed = False
        for link_id in network.data_path(rid):
            if link_id not in full_links:
                continue
            if max_rate_on_link[link_id] <= rate + tolerance * max(1.0, rate):
                witnessed = True
                break
        if not witnessed:
            violations.append(
                PropertyViolation(
                    subject=rid,
                    description=(
                        f"receiver {network.receiver(rid).name} (rate {rate:g}) has no fully "
                        "utilised link on its data-path on which it receives at the "
                        "highest rate"
                    ),
                )
            )
    return PropertyReport("fully-utilized-receiver-fairness", not violations, violations)


# ----------------------------------------------------------------------
# Fairness Property 2
# ----------------------------------------------------------------------

def same_path_receiver_fairness(
    allocation: Allocation,
    receivers: Optional[Sequence[ReceiverId]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> PropertyReport:
    """Check same-path-receiver-fairness (Fairness Property 2).

    Every pair of receivers with identical data-path link sets must have
    equal rates, unless the lower-rate receiver of the pair is capped by its
    session's maximum desired rate.  When ``receivers`` is given only pairs
    drawn from that set are checked.
    """
    network = allocation.network
    targets = list(receivers) if receivers is not None else network.all_receiver_ids()

    # Group receivers by their data-path link set; only groups of size >= 2
    # give rise to pair constraints.
    groups: Dict[frozenset, List[ReceiverId]] = {}
    for rid in targets:
        groups.setdefault(network.routing.data_path_set(rid), []).append(rid)

    violations: List[PropertyViolation] = []
    for group in groups.values():
        if len(group) < 2:
            continue
        for index, rid_a in enumerate(group):
            for rid_b in group[index + 1:]:
                rate_a = allocation.rate(rid_a)
                rate_b = allocation.rate(rid_b)
                if abs(rate_a - rate_b) <= tolerance * max(1.0, rate_a, rate_b):
                    continue
                lower, higher = (rid_a, rid_b) if rate_a < rate_b else (rid_b, rid_a)
                if _at_max_rate(network, allocation, lower, tolerance):
                    continue
                violations.append(
                    PropertyViolation(
                        subject=(rid_a, rid_b),
                        description=(
                            f"receivers {network.receiver(rid_a).name} (rate {rate_a:g}) and "
                            f"{network.receiver(rid_b).name} (rate {rate_b:g}) share a "
                            "data-path but receive at different rates"
                        ),
                    )
                )
    return PropertyReport("same-path-receiver-fairness", not violations, violations)


# ----------------------------------------------------------------------
# Fairness Property 3
# ----------------------------------------------------------------------

def per_receiver_link_fairness(
    allocation: Allocation,
    sessions: Optional[Sequence[int]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> PropertyReport:
    """Check per-receiver-link-fairness (Fairness Property 3).

    A session's allocation is per-receiver-link-fair when every one of its
    receivers either is at the maximum desired rate or has, somewhere on its
    data-path, a fully utilised link on which the session's link rate is at
    least as large as every other session's link rate.  When ``sessions`` is
    given only those sessions are checked.
    """
    network = allocation.network
    full_links = allocation.fully_utilized_links(tolerance)
    session_ids = list(sessions) if sessions is not None else [
        s.session_id for s in network.sessions
    ]
    rates_on_link = _session_rates_on_full_links(allocation, full_links)

    violations: List[PropertyViolation] = []
    for session_id in session_ids:
        session = network.session(session_id)
        for rid in session.receiver_ids:
            if _at_max_rate(network, allocation, rid, tolerance):
                continue
            witnessed = False
            for link_id in network.data_path(rid):
                if link_id not in full_links:
                    continue
                if _session_dominates_link(
                    rates_on_link[link_id], session_id, tolerance
                ):
                    witnessed = True
                    break
            if not witnessed:
                violations.append(
                    PropertyViolation(
                        subject=rid,
                        description=(
                            f"session {session.name} is not per-receiver-link-fair on the "
                            f"data-path of {network.receiver(rid).name}"
                        ),
                    )
                )
    return PropertyReport("per-receiver-link-fairness", not violations, violations)


# ----------------------------------------------------------------------
# Fairness Property 4
# ----------------------------------------------------------------------

def per_session_link_fairness(
    allocation: Allocation,
    sessions: Optional[Sequence[int]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> PropertyReport:
    """Check per-session-link-fairness (Fairness Property 4).

    A session is per-session-link-fair when all its receivers are at the
    maximum desired rate, or at least one fully utilised link on the
    session's data-path carries the session at a link rate no smaller than
    any other session's link rate there.
    """
    network = allocation.network
    full_links = allocation.fully_utilized_links(tolerance)
    session_ids = list(sessions) if sessions is not None else [
        s.session_id for s in network.sessions
    ]
    rates_on_link = _session_rates_on_full_links(allocation, full_links)

    violations: List[PropertyViolation] = []
    for session_id in session_ids:
        session = network.session(session_id)
        if all(
            _at_max_rate(network, allocation, rid, tolerance)
            for rid in session.receiver_ids
        ):
            continue
        witnessed = False
        for link_id in network.session_data_path(session_id):
            if link_id not in full_links:
                continue
            if _session_dominates_link(rates_on_link[link_id], session_id, tolerance):
                witnessed = True
                break
        if not witnessed:
            violations.append(
                PropertyViolation(
                    subject=session_id,
                    description=(
                        f"session {session.name} has no fully utilised link on its "
                        "data-path where its link rate is the largest"
                    ),
                )
            )
    return PropertyReport("per-session-link-fairness", not violations, violations)


#: Name -> checker mapping, in paper order.
PROPERTY_CHECKERS = {
    "fully-utilized-receiver-fairness": fully_utilized_receiver_fairness,
    "same-path-receiver-fairness": same_path_receiver_fairness,
    "per-receiver-link-fairness": per_receiver_link_fairness,
    "per-session-link-fairness": per_session_link_fairness,
}


def check_all_properties(
    allocation: Allocation,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, PropertyReport]:
    """Run all four fairness-property checkers on an allocation.

    Returns a mapping from property name (paper order) to its report.  The
    receiver-perspective checkers run over all receivers and the session
    perspective checkers over all sessions; use the individual checkers with
    their ``receivers``/``sessions`` arguments for the restricted Theorem-2
    statements on mixed networks.
    """
    return {
        "fully-utilized-receiver-fairness": fully_utilized_receiver_fairness(
            allocation, tolerance=tolerance
        ),
        "same-path-receiver-fairness": same_path_receiver_fairness(
            allocation, tolerance=tolerance
        ),
        "per-receiver-link-fairness": per_receiver_link_fairness(
            allocation, tolerance=tolerance
        ),
        "per-session-link-fairness": per_session_link_fairness(
            allocation, tolerance=tolerance
        ),
    }
