"""Classic unicast max-min fairness (Bertsekas & Gallagher).

This is the baseline against which the paper derives its desirable fairness
properties (Unicast Fairness Properties 1 and 2 in Section 2.1).  The
implementation is the standard bottleneck-based progressive-filling
algorithm over *flows* (one flow per unicast session) and is deliberately
independent of the general Appendix-A construction in
:mod:`repro.core.maxmin`, so the two can be cross-validated in tests.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from ..errors import FairnessComputationError, NetworkModelError
from ..network.network import Network
from .allocation import Allocation, DEFAULT_TOLERANCE

__all__ = ["unicast_max_min_fair"]


def unicast_max_min_fair(
    network: Network,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Allocation:
    """Compute the unicast max-min fair allocation.

    Every session of the network must be unicast (exactly one receiver).
    Each session is treated as a single flow consuming its rate on every
    link of its data-path.  The algorithm repeatedly finds the bottleneck
    link — the link with the smallest equal share of remaining capacity among
    its unfrozen flows — and freezes those flows at that share.

    Raises
    ------
    NetworkModelError
        If any session has more than one receiver.
    """
    for session in network.sessions:
        if session.num_receivers != 1:
            raise NetworkModelError(
                f"unicast_max_min_fair requires unicast sessions; session "
                f"{session.name} has {session.num_receivers} receivers"
            )

    flows: List[int] = [session.session_id for session in network.sessions]
    paths: Dict[int, Set[int]] = {
        i: set(network.data_path((i, 0))) for i in flows
    }
    rho: Dict[int, float] = {i: network.session(i).max_rate for i in flows}

    rates: Dict[int, float] = {i: 0.0 for i in flows}
    frozen: Set[int] = set()
    remaining: Dict[int, float] = {
        link.link_id: link.capacity for link in network.graph.links
    }

    max_rounds = len(flows) + network.num_links + 4
    for _ in range(max_rounds):
        unfrozen = [i for i in flows if i not in frozen]
        if not unfrozen:
            break

        # Share of remaining capacity per unfrozen flow on each link.
        best_share = math.inf
        bottleneck: Optional[int] = None
        for link_id, capacity_left in remaining.items():
            users = [i for i in unfrozen if link_id in paths[i]]
            if not users:
                continue
            share = capacity_left / len(users)
            if share < best_share - tolerance:
                best_share = share
                bottleneck = link_id

        # Flows limited only by their rho freeze at rho when that is smaller
        # than the best link share (or when they use no capacitated link).
        rho_limited = [
            i for i in unfrozen if rho[i] - rates[i] <= best_share + tolerance
        ]
        if rho_limited and (
            bottleneck is None
            or min(rho[i] - rates[i] for i in rho_limited) <= best_share + tolerance
        ):
            increment = min(rho[i] - rates[i] for i in rho_limited)
            increment = max(increment, 0.0)
            _apply_increment(unfrozen, increment, rates, paths, remaining)
            for i in unfrozen:
                if math.isfinite(rho[i]) and rho[i] - rates[i] <= tolerance * max(1.0, rho[i]):
                    frozen.add(i)
            continue

        if bottleneck is None:
            # No capacitated link constrains the remaining flows and no rho is
            # finite: the allocation is unbounded, which cannot happen in a
            # valid network (every data-path crosses at least one link of
            # finite capacity) unless a receiver is co-located with the
            # sender, which the model forbids.
            raise FairnessComputationError(
                "no bottleneck found for unfrozen unicast flows"
            )

        increment = max(best_share, 0.0)
        _apply_increment(unfrozen, increment, rates, paths, remaining)
        for i in unfrozen:
            if bottleneck in paths[i]:
                frozen.add(i)
        # Also freeze flows on any other link that saturated simultaneously.
        for link_id, capacity_left in remaining.items():
            if capacity_left <= tolerance:
                for i in unfrozen:
                    if link_id in paths[i]:
                        frozen.add(i)
    else:
        raise FairnessComputationError("unicast progressive filling did not converge")

    return Allocation(network, {(i, 0): rates[i] for i in flows})


def _apply_increment(
    unfrozen: List[int],
    increment: float,
    rates: Dict[int, float],
    paths: Dict[int, Set[int]],
    remaining: Dict[int, float],
) -> None:
    """Raise every unfrozen flow by ``increment`` and charge its links."""
    if increment <= 0:
        return
    for i in unfrozen:
        rates[i] += increment
        for link_id in paths[i]:
            remaining[link_id] -= increment
