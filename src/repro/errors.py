"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class NetworkModelError(ReproError):
    """Raised when a network, graph, or session is structurally invalid."""


class RoutingError(NetworkModelError):
    """Raised when a data-path cannot be constructed or is inconsistent."""


class AllocationError(ReproError):
    """Raised when an allocation is malformed or references unknown members."""


class InfeasibleAllocationError(AllocationError):
    """Raised when an allocation violates capacity or session constraints."""


class FairnessComputationError(ReproError):
    """Raised when a fairness algorithm cannot make progress."""


class LayeringError(ReproError):
    """Raised for invalid layer schemes or layer subscriptions."""


class SimulationError(ReproError):
    """Raised when the packet-level simulator is misconfigured."""


class ProtocolError(SimulationError):
    """Raised when a congestion-control protocol is misconfigured."""


class ExperimentError(ReproError):
    """Raised when an experiment is given inconsistent parameters."""
