"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class NetworkModelError(ReproError):
    """Raised when a network, graph, or session is structurally invalid."""


class RoutingError(NetworkModelError):
    """Raised when a data-path cannot be constructed or is inconsistent."""


class TopologyFormatError(NetworkModelError):
    """Raised when an on-disk topology file (GML/JSON) cannot be parsed or
    describes an invalid graph (missing endpoints, non-positive bandwidth)."""


class AllocationError(ReproError):
    """Raised when an allocation is malformed or references unknown members."""


class InfeasibleAllocationError(AllocationError):
    """Raised when an allocation violates capacity or session constraints."""


class FairnessComputationError(ReproError):
    """Raised when a fairness algorithm cannot make progress."""


class LayeringError(ReproError):
    """Raised for invalid layer schemes or layer subscriptions."""


class SimulationError(ReproError):
    """Raised when the packet-level simulator is misconfigured."""


class ProtocolError(SimulationError):
    """Raised when a congestion-control protocol is misconfigured."""


class ExperimentError(ReproError):
    """Raised when an experiment is given inconsistent parameters."""


class ExecutionError(ReproError):
    """Raised when task execution fails (worker crash, exhausted retries).

    Carries the structured per-task failure reports produced by the
    hardened runner (:mod:`repro.experiments.resilient`) in
    :attr:`failures` — each report names the task index, its arguments,
    the attempt count, and the final traceback — so callers can render an
    actionable summary instead of a bare traceback.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)


class TaskTimeoutError(ExecutionError):
    """Raised when a task exceeds its wall-clock timeout on every attempt."""


class ResultStoreError(ReproError):
    """Raised when the on-disk result store is misconfigured or unwritable.

    Corrupt *entries* never raise — they are quarantined and reported as
    cache misses (see :mod:`repro.experiments.store`); this error is for
    structural problems such as an unusable cache directory.
    """
