"""Compare the three layered congestion-control protocols on a modified star.

This example mirrors the Section 4 evaluation (Figure 8) at interactive
scale: one multicast session with many receivers behind a shared link, each
receiver running the Uncoordinated, Deterministic, or sender-Coordinated
protocol, Bernoulli loss on the shared and fan-out links.  It prints, per
protocol:

* the measured redundancy of the session on the shared link;
* the mean subscription level and mean receiving rate;
* the resulting fair-rate penalty other sessions would see if they shared a
  bottleneck with this session (the Figure 6 closed form).

Run with::

    python examples/layered_protocols.py [num_receivers] [independent_loss]
"""

from __future__ import annotations

import sys

from repro.analysis import format_table
from repro.core import bottleneck_fair_rate
from repro.protocols import make_protocol
from repro.simulator import star_redundancy, uniform_star


def main() -> None:
    num_receivers = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    independent_loss = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    shared_loss = 0.0001
    duration_units = 1200
    repetitions = 3

    config = uniform_star(
        num_receivers=num_receivers,
        shared_loss_rate=shared_loss,
        independent_loss_rate=independent_loss,
        duration_units=duration_units,
    )
    print(
        f"Simulating {num_receivers} receivers, shared loss {shared_loss}, "
        f"independent loss {independent_loss}, {duration_units} time units, "
        f"{repetitions} repetitions per protocol\n"
    )

    rows = []
    for name in ("coordinated", "deterministic", "uncoordinated"):
        measurement = star_redundancy(
            make_protocol(name), config, repetitions=repetitions, base_seed=0
        )
        # What the session's redundancy does to everyone's fair share when it
        # shares a 20-session bottleneck (Figure 6 with n=20, m=1).
        fair_rate = bottleneck_fair_rate(20, 1, measurement.mean_redundancy, capacity=1.0)
        efficient_rate = bottleneck_fair_rate(20, 1, 1.0, capacity=1.0)
        rows.append(
            [
                name,
                measurement.mean_redundancy,
                measurement.statistics.ci_low,
                measurement.statistics.ci_high,
                measurement.mean_receiver_rate,
                100.0 * (1.0 - fair_rate / efficient_rate),
            ]
        )

    print(
        format_table(
            ["protocol", "redundancy", "CI low", "CI high",
             "mean receiver rate (pkts/unit)", "fair-rate penalty on a 20-session link (%)"],
            rows,
        )
    )
    print(
        "\nThe sender-coordinated protocol keeps redundancy lowest, which is what "
        "lets layered multicast stay 'non-bandwidth-wasteful' (Section 4)."
    )


if __name__ == "__main__":
    main()
