"""Single-rate versus multi-rate sessions on randomised multicast networks.

This example reproduces the paper's core theoretical message (Section 2) on
workloads a network operator might care about: for a family of random tree
topologies carrying a mix of multicast sessions it

1. computes the max-min fair allocation with all sessions single-rate and
   with all sessions multi-rate (layered);
2. compares them under the min-unfavorability ordering (Lemma 3 / Corollary
   1) and reports the worst-off receiver's rate and Jain's fairness index;
3. converts sessions one at a time and shows the monotone improvement.

Run with::

    python examples/single_vs_multi_rate.py [num_networks]
"""

from __future__ import annotations

import sys

from repro.analysis import format_table, jain_fairness_index
from repro.core import (
    check_all_properties,
    max_min_fair_allocation,
    min_unfavorable,
    strictly_min_unfavorable,
)
from repro.experiments import run_mixed_sessions
from repro.network import random_multicast_network


def compare_on_random_networks(num_networks: int) -> None:
    rows = []
    strict_improvements = 0
    for seed in range(num_networks):
        network = random_multicast_network(
            seed=seed, num_links=16, num_sessions=6, max_receivers_per_session=4
        )
        single = max_min_fair_allocation(network.with_all_single_rate())
        multi = max_min_fair_allocation(network.with_all_multi_rate())

        assert min_unfavorable(single.ordered_vector(), multi.ordered_vector())
        if strictly_min_unfavorable(single.ordered_vector(), multi.ordered_vector()):
            strict_improvements += 1

        properties = check_all_properties(multi)
        rows.append(
            [
                seed,
                single.min_rate(),
                multi.min_rate(),
                jain_fairness_index(list(single.ordered_vector())),
                jain_fairness_index(list(multi.ordered_vector())),
                "yes" if all(r.holds for r in properties.values()) else "no",
            ]
        )

    print(
        format_table(
            ["seed", "min rate (single)", "min rate (multi)",
             "Jain (single)", "Jain (multi)", "Theorem 1 holds"],
            rows,
        )
    )
    print(
        f"\nmulti-rate strictly more max-min fair on {strict_improvements}/{num_networks} "
        "random networks (never less fair on any)"
    )


def show_gradual_conversion() -> None:
    print("\nConverting sessions one at a time (Lemma 3), seed 7:")
    result = run_mixed_sessions(seed=7, num_links=14, num_sessions=5)
    print(result.table())
    print(f"ordering monotone: {result.ordering_is_monotone}")


def main() -> None:
    num_networks = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    compare_on_random_networks(num_networks)
    show_gradual_conversion()


if __name__ == "__main__":
    main()
