"""Provisioning study: how much redundancy can a network tolerate?

The paper argues (Section 3.1, Figure 6) that because multi-rate sessions are
expected to be a small fraction of traffic, moderate redundancy barely moves
fair rates.  This example turns that argument into a small planning tool:

1. given a population of receiver rates behind a shared link, it evaluates
   the Appendix-B redundancy of uncoordinated joins as a function of the
   number of layers the sender provisions (Figure 5 / layer-count ablation);
2. it then folds the resulting redundancy into the Figure 6 closed form to
   show the fair-rate penalty for different multi-rate traffic shares;
3. finally it verifies the closed form against the water-filling solver on a
   concrete bottleneck network.

Run with::

    python examples/redundancy_planning.py
"""

from __future__ import annotations

from repro.analysis import format_series, format_table
from repro.core import bottleneck_fair_rate, max_min_fair_allocation, normalized_fair_rate
from repro.layering import layer_count_ablation, single_layer_redundancy, uniform_rates
from repro.network import shared_bottleneck_with_redundancy


def study_layer_provisioning() -> dict:
    rates = uniform_rates(30, 0.3)
    print("Receiver population: 30 receivers, each with fair rate 0.3 (budget 1.0)\n")

    layer_counts = (1, 2, 4, 8)
    redundancy_by_layers = layer_count_ablation(rates, 1.0, layer_counts)
    print(
        format_series(
            "layers provisioned",
            list(layer_counts),
            {"uncoordinated-join redundancy": [redundancy_by_layers[k] for k in layer_counts]},
        )
    )
    single = single_layer_redundancy(rates, 1.0)
    print(f"\nsingle-layer redundancy {single:.2f}; "
          f"8 layers reduce it to {redundancy_by_layers[8]:.2f}\n")
    return redundancy_by_layers


def study_fair_rate_impact(redundancy_by_layers: dict) -> None:
    fractions = (0.01, 0.05, 0.1, 0.5, 1.0)
    rows = []
    for layers in (1, 2, 8):
        redundancy = redundancy_by_layers[layers]
        for fraction in fractions:
            rows.append(
                [layers, fraction, redundancy, normalized_fair_rate(fraction, redundancy)]
            )
    print(
        format_table(
            ["layers", "multi-rate share m/n", "redundancy v", "normalised fair rate"], rows
        )
    )
    print()


def verify_against_water_filling(redundancy: float) -> None:
    num_sessions, num_redundant = 20, 2
    network = shared_bottleneck_with_redundancy(
        num_sessions=num_sessions, num_redundant=num_redundant,
        redundancy=redundancy, capacity=1.0,
    )
    allocation = max_min_fair_allocation(network)
    formula = bottleneck_fair_rate(num_sessions, num_redundant, redundancy, capacity=1.0)
    print(
        f"water-filling fair rate on a 20-session bottleneck with 2 redundant sessions: "
        f"{allocation.min_rate():.6f} (closed form {formula:.6f})"
    )


def main() -> None:
    redundancy_by_layers = study_layer_provisioning()
    study_fair_rate_impact(redundancy_by_layers)
    verify_against_water_filling(redundancy_by_layers[1])


if __name__ == "__main__":
    main()
