"""Weighted (TCP-style) max-min fairness — the Section 5 extension in action.

The paper suggests its results carry over to TCP-fairness by weighting each
receiver's rate by the inverse of its round-trip time.  This example builds a
network where several unicast "TCP-like" sessions and one layered multicast
session share a bottleneck, assigns RTT-based weights, and compares:

* the unweighted multi-rate max-min fair allocation (every receiver equal on
  the bottleneck), and
* the weighted allocation (short-RTT receivers get proportionally more,
  as TCP would give them),

verifying that weighted same-path fairness holds and that unit weights
reproduce the unweighted allocation exactly.

Run with::

    python examples/tcp_fairness.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import (
    max_min_fair_allocation,
    normalized_rate_vector,
    rtt_weights,
    weighted_max_min_fair_allocation,
    weighted_same_path_receiver_fairness,
)
from repro.network import NetworkGraph, Network, Session, SessionType


def build_network() -> Network:
    """Three unicast sessions and one two-receiver multicast session on one bottleneck."""
    graph = NetworkGraph()
    graph.add_link("src", "hub", capacity=20.0, name="bottleneck")
    graph.add_link("hub", "near", capacity=100.0, name="to-near")
    graph.add_link("hub", "far", capacity=100.0, name="to-far")
    graph.add_link("hub", "edge", capacity=100.0, name="to-edge")
    sessions = [
        Session(0, "src", ["near"]),                                 # short-RTT unicast
        Session(1, "src", ["far"]),                                  # long-RTT unicast
        Session(2, "src", ["edge"]),                                 # medium-RTT unicast
        Session(3, "src", ["near", "far"], SessionType.MULTI_RATE),  # layered multicast
    ]
    return Network(graph, sessions)


#: Round-trip times in seconds per receiver (session, index).
ROUND_TRIP_TIMES = {
    (0, 0): 0.010,   # near unicast
    (1, 0): 0.080,   # far unicast
    (2, 0): 0.040,   # edge unicast
    (3, 0): 0.010,   # multicast receiver at the near node
    (3, 1): 0.080,   # multicast receiver at the far node
}


def main() -> None:
    network = build_network()
    unweighted = max_min_fair_allocation(network)
    weights = rtt_weights(network, ROUND_TRIP_TIMES)
    weighted = weighted_max_min_fair_allocation(network, weights)

    rows = []
    for rid in network.all_receiver_ids():
        receiver = network.receiver(rid)
        rows.append(
            [
                receiver.name,
                ROUND_TRIP_TIMES[rid] * 1000.0,
                unweighted.rate(rid),
                weighted.rate(rid),
                weighted.rate(rid) / weights[rid],
            ]
        )
    print(
        format_table(
            ["receiver", "RTT (ms)", "unweighted rate", "TCP-weighted rate",
             "normalised (rate * RTT)"],
            rows,
        )
    )

    report = weighted_same_path_receiver_fairness(weighted, weights)
    print(f"\nweighted same-path receiver fairness: {'holds' if report.holds else 'FAILS'}")
    print(
        "normalised rates (sorted):",
        [round(value, 4) for value in normalized_rate_vector(weighted, weights)],
    )
    print(
        "\nShort-RTT receivers now receive proportionally more, exactly as a "
        "population of TCP flows would divide the bottleneck, while the layered "
        "multicast session still serves each of its receivers at that receiver's "
        "own weighted fair rate."
    )


if __name__ == "__main__":
    main()
