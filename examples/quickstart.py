"""Quickstart: compute a multi-rate max-min fair allocation and check fairness.

Builds the paper's Figure 1 network, computes the max-min fair allocation
with the Appendix-A water-filling construction, prints receiver rates,
session link rates, and link utilisation, and verifies that all four
desirable fairness properties hold (Theorem 1).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import check_all_properties, max_min_fair_allocation
from repro.network import figure1_network


def main() -> None:
    network = figure1_network()
    print(f"Network: {network!r}")
    print()

    allocation = max_min_fair_allocation(network)

    print("Max-min fair receiver rates")
    print("---------------------------")
    for session in network.sessions:
        for receiver in session.receivers:
            rate = allocation.rate(receiver.receiver_id)
            print(f"  {receiver.name:>6} (session {session.name}, node {receiver.node}): {rate:g}")
    print()

    print("Link usage (session link rates u_ij and utilisation)")
    print("-----------------------------------------------------")
    for link in network.graph.links:
        session_rates = allocation.session_link_rates(link.link_id)
        rates_text = ", ".join(
            f"{network.session(i).name}={session_rates[i]:g}" for i in sorted(session_rates)
        )
        utilisation = allocation.link_utilization(link.link_id)
        flag = " (fully utilised)" if allocation.is_link_fully_utilized(link.link_id) else ""
        print(f"  {link.name} (capacity {link.capacity:g}): {rates_text} "
              f"-> {utilisation:.0%}{flag}")
    print()

    print("Fairness properties (Theorem 1)")
    print("-------------------------------")
    for name, report in check_all_properties(allocation).items():
        print(f"  {name:<35} {'holds' if report.holds else 'FAILS'}")


if __name__ == "__main__":
    main()
